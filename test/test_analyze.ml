(* Tests for the static policy analyzer: per-rolefile checks (Analyze), the
   federation linter (Federation_lint), Service lint gating, and the
   satellite fixes riding with them — total relational comparison,
   accumulator variable collection, IDL set types, and the pretty round-trip
   property over generated rolefiles plus the on-disk examples.

   Every check has at least one positive case (flagged, with the right code
   and line) and at least one negative case (not flagged). *)

module Ast = Oasis_rdl.Ast
module Parser = Oasis_rdl.Parser
module Pretty = Oasis_rdl.Pretty
module Analyze = Oasis_rdl.Analyze
module Infer = Oasis_rdl.Infer
module Eval = Oasis_rdl.Eval
module Value = Oasis_rdl.Value
module Ty = Oasis_rdl.Ty
module FL = Oasis_core.Federation_lint
module Service = Oasis_core.Service
module Composite = Oasis_events.Composite
module Idl = Oasis_events.Idl
module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let lint src = Analyze.check_src src
let has code ds = List.exists (fun d -> d.Analyze.code = code) ds
let count code ds = List.length (List.filter (fun d -> d.Analyze.code = code) ds)

let diag code ds =
  match List.find_opt (fun d -> d.Analyze.code = code) ds with
  | Some d -> d
  | None ->
      Alcotest.failf "no %s among: %s" code
        (String.concat "; " (List.map Analyze.diag_to_string ds))

let no_diags ds =
  checks "no diagnostics" "" (String.concat "; " (List.map Analyze.diag_to_string ds))

(* --- RDL000: parse errors become diagnostics --- *)

let test_rdl000 () =
  let ds = lint "Member( <-" in
  checki "one diag" 1 (List.length ds);
  let d = diag "RDL000" ds in
  checkb "error severity" true (d.Analyze.severity = Analyze.Error);
  checkb "line known" true (d.Analyze.line >= 1);
  no_diags (lint "Base(u) <-\n")

(* --- RDL001: variables that can never be bound --- *)

let test_rdl001_unbound () =
  (* The paper's login-service defect class: h appears only in the
     constraint, the engine starts from an empty environment, so the
     statement silently never fires. *)
  let ds = lint "Base(u) <-\nLogin(u, h) <- Base(u) : h in hosts\n" in
  checki "head + constraint" 2 (count "RDL001" ds);
  checki "anchored at line 2" 2 (diag "RDL001" ds).Analyze.line

let test_rdl001_negative () =
  (* Bound positionally, bound through a bind chain, or an axiom head. *)
  no_diags (lint "Base(u) <-\nX(u, v) <- Base(u) : v <- f(u) and v > 0\n");
  no_diags (lint "LoggedOn(u, h) <-\n")

let test_rdl001_unbindable_chain () =
  (* v <- f(w) cannot bind v because w is itself unbound. *)
  let ds = lint "Base(u) <-\nX(u) <- Base(u) : v <- f(w) and v > 0\n" in
  checkb "w and v both unbound" true (count "RDL001" ds = 2)

(* --- RDL002/RDL003: binder hygiene --- *)

let test_rdl002 () =
  let ds = lint "Base(u) <-\nS(u) <- Base(u) : v <- 7\n" in
  checki "unused binder" 1 (count "RDL002" ds);
  checkb "warning" true ((diag "RDL002" ds).Analyze.severity = Analyze.Warning);
  no_diags (lint "Base(u) <-\nS(u) <- Base(u) : v <- 7 and v > 3\n");
  (* used by the head: synthesised as a head argument, not dead *)
  no_diags (lint "Base(u) <-\nS(u, v) <- Base(u) : v <- 7\n")

let test_rdl003 () =
  let ds = lint "Base(u) <-\nT(u) <- Base(u) : v <- 1 and v <- u and v > 0\n" in
  checki "rebind flagged" 1 (count "RDL003" ds);
  no_diags (lint "Base(u) <-\nT(u) <- Base(u) : v <- 1 and v > 0\n")

(* --- RDL004: duplicate entries --- *)

let test_rdl004 () =
  let ds = lint "Base(u) <-\nD(u) <- Base(u)*\nD(u) <- Base(u)*\n" in
  checki "duplicate" 1 (count "RDL004" ds);
  checki "at the second occurrence" 3 (diag "RDL004" ds).Analyze.line;
  (* differing star/constraint = different statements *)
  no_diags (lint "Base(u) <-\nD(u) <- Base(u)*\nD(u) <- Base(u)\n");
  (* the golf-club quorum idiom: one entry naming a role twice is not a dup *)
  no_diags (lint "M(u) <-\nS(u) <- M(p)* /\\ M(q)* /\\ M(u)* : p <> q\n")

(* --- RDL005/RDL006: arity and types (via inference) --- *)

let test_rdl005 () =
  let ds = lint "def F(u)\nBase(u) <-\nF(u, v) <- Base(u) /\\ Base(v)\n" in
  checki "arity" 1 (count "RDL005" ds);
  checki "on the bad entry" 3 (diag "RDL005" ds).Analyze.line;
  no_diags (lint "def F(u)\nBase(u) <-\nF(u) <- Base(u)\n")

let test_rdl006 () =
  let ds = lint "Base(u) <-\nX(u) <- Base(u) : u > 5 and u = \"s\"\n" in
  checki "type clash" 1 (count "RDL006" ds);
  no_diags (lint "Base(u) <-\nX(u) <- Base(u) : u > 5 and u < 9\n")

(* --- RDL007/RDL008: unknown functions and groups --- *)

let funcs_ctx =
  {
    Analyze.default_context with
    Analyze.known_funcs = Some [ "unixacl" ];
    known_groups = Some [ "staff" ];
  }

let test_rdl007 () =
  let src = "Base(u) <-\nX(u) <- Base(u) : magic(u) > 0\n" in
  let ds = Analyze.check_src ~context:funcs_ctx src in
  checki "unknown func" 1 (count "RDL007" ds);
  checkb "error severity" true ((diag "RDL007" ds).Analyze.severity = Analyze.Error);
  (* without a known universe the check is off *)
  checki "disabled" 0 (count "RDL007" (lint src));
  no_diags
    (Analyze.check_src ~context:funcs_ctx
       "Base(u) <-\nX(u) <- Base(u) : unixacl(\"+u=rw\", u) subset {rw}\n")

let test_rdl008 () =
  let src = "Base(u) <-\nX(u) <- Base(u) : u in visitors\n" in
  let ds = Analyze.check_src ~context:funcs_ctx src in
  checki "unknown group" 1 (count "RDL008" ds);
  checkb "warning" true ((diag "RDL008" ds).Analyze.severity = Analyze.Warning);
  checki "disabled" 0 (count "RDL008" (lint src));
  no_diags (Analyze.check_src ~context:funcs_ctx "Base(u) <-\nX(u) <- Base(u) : u in staff\n")

(* --- RDL009/RDL010: import hygiene --- *)

let test_rdl009 () =
  let ds = lint "import Login.userid\nBase(u) <-\n" in
  checki "unused import" 1 (count "RDL009" ds);
  checki "at the import" 1 (diag "RDL009" ds).Analyze.line;
  no_diags (lint "import Login.userid\ndef Base(u) u: userid\nBase(u) <-\n")

let test_rdl010 () =
  let ds = lint "def Owner(f) f: fileid\nOwner(f) <-\n" in
  checki "missing import" 1 (count "RDL010" ds);
  no_diags (lint "import Store.fileid\ndef Owner(f) f: fileid\nOwner(f) <-\n")

(* --- RDL011: unsatisfiable constraints --- *)

let test_rdl011 () =
  let ds = lint "Base(c) <-\nX(c) <- Base(c) : c > 5 and c < 3\n" in
  checki "interval contradiction" 1 (count "RDL011" ds);
  checki "line" 2 (diag "RDL011" ds).Analyze.line;
  checki "negated tautology" 1 (count "RDL011" (lint "Base(u) <-\nX(u) <- Base(u) : not (u = u)\n"));
  checki "opaque contradiction" 1
    (count "RDL011" (lint "Base(u) <-\nX(u) <- Base(u) : u in g and not (u in g)\n"));
  no_diags (lint "Base(c) <-\nX(c) <- Base(c) : c > 5 or c < 3\n");
  no_diags (lint "Base(c) <-\nX(c) <- Base(c) : c > 5 and c < 9\n")

let test_sat_direct () =
  let open Ast in
  let x = Evar "x" in
  let i n = Elit (Value.Int n) in
  let is_ what v = checkb what true (v = what) in
  ignore is_;
  let chk name expected c =
    let got =
      match Analyze.sat c with `Sat -> "sat" | `Unsat -> "unsat" | `Unknown -> "unknown"
    in
    checks name expected got
  in
  chk "interval" "unsat" (Cand (Crel (Gt, x, i 5), Crel (Lt, x, i 3)));
  chk "or rescues" "sat" (Cor (Crel (Gt, x, i 5), Crel (Lt, x, i 3)));
  chk "not tautology" "unsat" (Cnot (Crel (Eq, x, x)));
  chk "same var lt" "unsat" (Crel (Lt, x, x));
  chk "const fold true" "sat" (Crel (Eq, i 1, i 1));
  chk "const fold false" "unsat" (Crel (Eq, i 1, i 2));
  chk "ill-typed ordering" "unsat" (Crel (Lt, Elit (Value.Str "a"), Elit (Value.Str "b")));
  chk "pinned point excluded" "unsat"
    (Cand (Crel (Ge, x, i 1), Cand (Crel (Le, x, i 2), Cand (Crel (Ne, x, i 1), Crel (Ne, x, i 2)))));
  chk "eq conflict" "unsat" (Cand (Crel (Eq, x, i 4), Crel (Eq, x, i 5)));
  chk "bind conflicts with eq" "unsat" (Cand (Cbind ("x", i 4), Crel (Eq, x, i 5)));
  chk "opaque polarity" "unsat" (Cand (Cin (x, "g"), Cnot (Cin (x, "g"))));
  chk "opaque alone" "unknown" (Cin (x, "g"));
  chk "star transparent" "unsat" (Cstar (Cand (Crel (Gt, x, i 5), Crel (Lt, x, i 3))));
  chk "subset const" "unsat"
    (Csubset (Elit (Value.set_of_chars "rw"), Elit (Value.set_of_chars "r")));
  (* DNF blow-up past the cap degrades to unknown, never wrong *)
  let big =
    let disj v = Cor (Cin (Evar v, "g"), Cin (Evar v, "h")) in
    List.fold_left
      (fun acc v -> Cand (acc, disj v))
      (disj "v0")
      (List.init 12 (fun j -> Printf.sprintf "v%d" (j + 1)))
  in
  chk "too wide" "unknown" big

(* --- line threading (satellite 1) --- *)

let test_item_lines () =
  let rf = Parser.parse "import A.t\n\ndef F(u) u: t\nBase(u) <-\n\nF(u) <- Base(u)\n" in
  checks "item lines" "1,3,4,6"
    (String.concat "," (List.map (fun it -> string_of_int (Ast.item_line it)) rf));
  let stripped = Ast.strip_lines rf in
  checks "stripped" "0,0,0,0"
    (String.concat "," (List.map (fun it -> string_of_int (Ast.item_line it)) stripped))

let test_infer_located_line () =
  let rf = Parser.parse "Base(u) <-\nX(u) <- Base(u) : u > 1 and u = \"s\"\n" in
  match Infer.infer_located rf with
  | Ok _ -> Alcotest.fail "expected type error"
  | Error (line, _) -> checki "error line" 2 line

(* --- federation checks --- *)

let member name src = { FL.fl_name = name; FL.fl_file = name ^ ".rdl"; fl_rolefile = Parser.parse src }

let test_federation_deadlock () =
  let fed =
    FL.make
      [ member "CycA" "X(u) <- CycB.Y(u)\n"; member "CycB" "Y(u) <- CycA.X(u)\n" ]
  in
  let ds = FL.check fed in
  checki "one cycle report" 1 (count "OASIS001" ds);
  checkb "names both nodes" true
    (let m = (diag "OASIS001" ds).Analyze.message in
     let mem s =
       let n = String.length s and l = String.length m in
       let rec go i = i + n <= l && (String.sub m i n = s || go (i + 1)) in
       go 0
     in
     mem "CycA.X" && mem "CycB.Y");
  (* deadlocked roles are not double-reported as merely unreachable *)
  checki "no OASIS002 for cycle members" 0 (count "OASIS002" ds)

let test_federation_bootstrapped_cycle () =
  (* The same shape plus an axiom inside the cycle: mutual recursion with a
     bootstrap is the paper's normal idiom, not a deadlock. *)
  let fed =
    FL.make
      [ member "A" "X(u) <-\nX(u) <- B.Y(u)\n"; member "B" "Y(u) <- A.X(u)\n" ]
  in
  let ds = FL.check fed in
  checki "no deadlock" 0 (count "OASIS001" ds);
  checki "no unreachable" 0 (count "OASIS002" ds)

let test_federation_unreachable () =
  let fed =
    FL.make [ member "A" "Base(u) <-\nStuck(u) <- Base(u) /\\ Gone(u)\nGone(u) <- Stuck(u)\n" ] in
  let ds = FL.check fed in
  (* Stuck <-> Gone is a cycle with no bootstrap *)
  checki "deadlock" 1 (count "OASIS001" ds);
  checki "base fine" 0
    (List.length (List.filter (fun d -> d.Analyze.severity = Analyze.Error) ds) - 1)

let test_federation_unreachable_constraint () =
  (* unreachable because its only entry's constraint is unsatisfiable *)
  let fed = FL.make [ member "A" "Base(u) <-\nNever(u) <- Base(u) : u > 5 and u < 3\n" ] in
  let ds = FL.check fed in
  checki "unreachable" 1 (count "OASIS002" ds);
  checki "line of entry" 2 (diag "OASIS002" ds).Analyze.line

let test_federation_unknown_role () =
  let fed =
    FL.make [ member "A" "Base(u) <-\n"; member "B" "In(u) <- A.Nope(u)\n" ] in
  let ds = FL.check fed in
  checki "unknown role" 1 (count "OASIS003" ds);
  checks "in B" "B.rdl" (diag "OASIS003" ds).Analyze.file;
  (* a role of a service outside the federation is not checkable *)
  checki "external ok" 0 (count "OASIS003" (FL.check (FL.make [ member "B" "In(u) <- Z.Nope(u)\n" ])))

let test_federation_revocation_gaps () =
  let fed =
    FL.make
      [
        member "A" "Base(u) <-\n";
        member "B" "In(u) <- A.Base(u)* /\\ Out.Thing(u)*\nSoft(u) <- A.Base(u)\n";
      ]
  in
  let ds = FL.check fed in
  (* starred prerequisite from outside the federation: no revocation channel *)
  checki "no channel" 1 (count "OASIS004" ds);
  checkb "warning" true ((diag "OASIS004" ds).Analyze.severity = Analyze.Warning);
  (* revocable prerequisite consumed without a star: info-level gap *)
  checki "gap info" 1 (count "OASIS005" ds);
  checkb "info" true ((diag "OASIS005" ds).Analyze.severity = Analyze.Info);
  checki "gap on line 2" 2 (diag "OASIS005" ds).Analyze.line

let test_federation_per_file () =
  let fed = FL.make [ member "A" "Base(u) <-\nX(u) <- Base(u) : w > 0\n" ] in
  checki "no per-file by default" 0 (count "RDL001" (FL.check fed));
  checkb "per-file included" true (has "RDL001" (FL.check ~per_file:true fed))

let test_federation_external_sig () =
  (* member_context resolves sibling signatures: B's bad call-out is a
     per-file arity error only when linted as part of the federation *)
  let a = member "A" "def Base(u, h) u: String h: String\nBase(u, h) <-\n" in
  let b = member "B" "In(u) <- A.Base(u)\n" in
  let fed = FL.make [ a; b ] in
  let ds = FL.check ~per_file:true fed in
  checkb "cross-service arity" true (has "RDL005" ds);
  checks "anchored in B" "B.rdl" (diag "RDL005" ds).Analyze.file

let test_escalation () =
  let fed =
    FL.make
      [
        member "A" "Boot(u) <-\nMember(u) <- Boot(u) /\\ B.Peer(u)*\n";
        member "B" "Peer(u) <- A.Member(u)\nEasy(u) <-\n";
      ]
  in
  checkb "holder escapes deadlock" true
    (FL.can_reach fed ~holder:("A", "Member") ~target:("B", "Peer"));
  checkb "axioms alone cannot" false
    (FL.can_reach fed ~holder:("B", "Easy") ~target:("A", "Member"));
  checks "frontier" "B.Peer"
    (String.concat "," (List.map FL.node_str (FL.escalation fed ~holder:("A", "Member"))));
  checks "nothing new" ""
    (String.concat "," (List.map FL.node_str (FL.escalation fed ~holder:("B", "Easy"))))

(* --- Service lint gating --- *)

let make_world () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.005) engine in
  (engine, net, Service.create_registry ())

let try_create ?lint ?funcs ~rolefile () =
  let _, net, reg = make_world () in
  Service.create net (Net.add_host net "h") reg ~name:"S" ~rolefile ?funcs ?lint ()

let test_service_gating_errors () =
  let bad = "Base(u) <-\nBad(u) <- Base(u) : w > 5\n" in
  (match try_create ~rolefile:bad () with
  | Error e ->
      checkb "mentions lint" true (String.length e >= 4 && String.sub e 0 4 = "lint");
      checkb "names the code" true
        (let rec go i =
           i + 6 <= String.length e && (String.sub e i 6 = "RDL001" || go (i + 1))
         in
         go 0)
  | Ok _ -> Alcotest.fail "lint should have failed registration");
  (match try_create ~lint:`Off ~rolefile:bad () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "lint `Off should accept: %s" e)

let test_service_gating_warnings () =
  let dup = "Base(u) <-\nD(u) <- Base(u)\nD(u) <- Base(u)\n" in
  (match try_create ~rolefile:dup () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "warnings should not gate by default: %s" e);
  match try_create ~lint:`Strict ~rolefile:dup () with
  | Error e ->
      checkb "strict names RDL004" true
        (let rec go i =
           i + 6 <= String.length e && (String.sub e i 6 = "RDL004" || go (i + 1))
         in
         go 0)
  | Ok _ -> Alcotest.fail "strict should gate on warnings"

let test_service_gating_funcs () =
  let rf = "Base(u) <-\nF(u) <- Base(u) : magic(u) > 0\n" in
  (match try_create ~rolefile:rf () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown extension function should gate");
  match try_create ~funcs:[ ("magic", fun _ -> Ok (Value.Int 1)) ] ~rolefile:rf () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "declared function should pass: %s" e

let test_registry_services () =
  let _, net, reg = make_world () in
  List.iter
    (fun name ->
      match Service.create net (Net.add_host net name) reg ~name ~rolefile:"Base(u) <-\n" () with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "create %s: %s" name e)
    [ "Zeta"; "Alpha" ];
  checks "sorted enumeration" "Alpha,Zeta"
    (String.concat "," (List.map Service.name (Service.services reg)));
  let fed = FL.of_registry reg in
  checki "registry federation lints clean" 0 (List.length (Analyze.errors (FL.check fed)))

(* --- satellite 2: total relop arms --- *)

let test_compare_rel_total () =
  checkb "eq str" true (Eval.compare_rel Ast.Eq (Value.Str "a") (Value.Str "a") = Ok true);
  checkb "ne obj" true
    (Eval.compare_rel Ast.Ne (Value.Obj ("d", "1")) (Value.Obj ("d", "2")) = Ok true);
  checkb "eq set" true
    (Eval.compare_rel Ast.Eq (Value.set_of_chars "wr") (Value.set_of_chars "rw") = Ok true);
  checkb "lt ints" true (Eval.compare_rel Ast.Lt (Value.Int 1) (Value.Int 2) = Ok true);
  (match Eval.compare_rel Ast.Lt (Value.Str "a") (Value.Str "b") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ordering on strings must be an error");
  (* and through the evaluator: an error result, not a crash *)
  let env = [ ("a", Value.Str "x"); ("b", Value.Str "y") ] in
  (match Eval.eval Eval.pure_ctx env (Ast.Crel (Ast.Ge, Ast.Evar "a", Ast.Evar "b")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected ordering type error");
  match Eval.eval Eval.pure_ctx env (Ast.Crel (Ast.Ne, Ast.Evar "a", Ast.Evar "b")) with
  | Ok (true, _, _) -> ()
  | _ -> Alcotest.fail "Ne on strings should hold"

let test_composite_relops_total () =
  let env v = [ ("x", Value.Int v); ("s", Value.Str "a") ] in
  let side op a b = [ Composite.Scmp (op, Composite.Svar a, Composite.Svar b) ] in
  checkb "eq int via generic path" true
    (Composite.eval_side ~now:0.0 (env 1) (side Ast.Eq "x" "x") <> None);
  checkb "ne same var fails" true
    (Composite.eval_side ~now:0.0 (env 1) (side Ast.Ne "x" "x") = None);
  checkb "eq str" true (Composite.eval_side ~now:0.0 (env 1) (side Ast.Eq "s" "s") <> None);
  (* ordering on non-integers rejects the candidate instead of crashing *)
  checkb "lt str rejects" true
    (Composite.eval_side ~now:0.0 (env 1) (side Ast.Lt "s" "s") = None)

let test_idl_set_type () =
  match Idl.parse "interface I { grant(r: {wrr}) : Integer; event E(s: {rwx}); }" with
  | Error e -> Alcotest.failf "idl parse: %s" e
  | Ok iface -> (
      (match iface.Idl.if_operations with
      | [ { Idl.op_params = [ (_, Ty.Set alphabet) ]; _ } ] ->
          checks "normalised alphabet" "rw" alphabet
      | _ -> Alcotest.fail "operation shape");
      match iface.Idl.if_events with
      | [ { Idl.ev_params = [ (_, Ty.Set a) ]; _ } ] -> checks "event alphabet" "rwx" a
      | _ -> Alcotest.fail "event shape")

(* --- satellite 3: accumulator variable collection --- *)

let test_constr_vars_deep () =
  let open Ast in
  let n = 20_000 in
  let atom i = Crel (Eq, Evar (Printf.sprintf "v%d" (i mod 7)), Evar "shared") in
  let deep = ref (atom 0) in
  for i = 1 to n do
    deep := Cand (atom i, !deep)
  done;
  (* linear-time collection: this would take minutes with quadratic append *)
  let t0 = Sys.time () in
  let vars = constr_vars !deep in
  let dt = Sys.time () -. t0 in
  checkb "fast enough" true (dt < 2.0);
  checki "deduplicated" 8 (List.length vars);
  (* first-occurrence order: outermost conjunct first *)
  checks "order head" (Printf.sprintf "v%d" (n mod 7)) (List.hd vars);
  checkb "bind targets included" true
    (constr_vars (Cbind ("x", Elit (Value.Int 1))) = [ "x" ]);
  checks "expr vars order" "a,b"
    (String.concat "," (expr_vars (Ecall ("f", [ Evar "a"; Evar "b"; Evar "a" ]))))

(* --- pretty round trip: on-disk examples and generated rolefiles --- *)

let example_dir =
  (* cwd is test/ under [dune runtest] but the workspace root under
     [dune exec test/test_analyze.exe] *)
  List.find Sys.file_exists [ "../examples/rolefiles"; "examples/rolefiles" ]

let test_roundtrip_examples () =
  let files =
    Sys.readdir example_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".rdl")
    |> List.sort compare
  in
  checkb "found the example rolefiles" true (List.length files >= 4);
  List.iter
    (fun f ->
      let src = In_channel.with_open_text (Filename.concat example_dir f) In_channel.input_all in
      let rf = Parser.parse src in
      let rf2 = Parser.parse (Pretty.to_string rf) in
      if Ast.strip_lines rf <> Ast.strip_lines rf2 then
        Alcotest.failf "round trip failed for %s:\n%s" f (Pretty.to_string rf);
      (* and the examples lint clean at error severity *)
      match Analyze.errors (Analyze.check rf) with
      | [] -> ()
      | d :: _ -> Alcotest.failf "%s: %s" f (Analyze.diag_to_string d))
    files

(* A seeded rolefile generator covering every AST constructor, including the
   printer's precedence corners (or under and, star on compounds, negated
   binds). *)
let gen_rolefile rng =
  let open Ast in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  let var () = pick [ "x1"; "x2"; "x3"; "y"; "z" ] in
  let value () =
    match Random.State.int rng 4 with
    | 0 -> Value.Int (Random.State.int rng 100)
    | 1 -> Value.Str (pick [ "alpha"; "b2"; "curl" ])
    | 2 -> Value.set_of_chars (pick [ "rw"; "x"; "adr" ])
    | _ -> Value.Obj (pick [ "doc"; "fileid" ], pick [ "i1"; "i2" ])
  in
  let arg () = if Random.State.bool rng then Avar (var ()) else Alit (value ()) in
  let args () = List.init (Random.State.int rng 3) (fun _ -> arg ()) in
  let role () = pick [ "Member"; "Chair"; "LoggedOn"; "Rev" ] in
  let sref () =
    match Random.State.int rng 3 with
    | 0 -> { service = None; rolefile = None }
    | 1 -> { service = Some (pick [ "Login"; "Store" ]); rolefile = None }
    | _ -> { service = Some (pick [ "Login"; "Store" ]); rolefile = Some "main" }
  in
  let role_ref () =
    { sref = sref (); role = role (); ref_args = args (); starred = Random.State.bool rng }
  in
  let rec expr depth =
    if depth = 0 || Random.State.int rng 3 = 0 then
      if Random.State.bool rng then Evar (var ()) else Elit (value ())
    else
      Ecall
        ( pick [ "f"; "creator"; "unixacl" ],
          List.init (1 + Random.State.int rng 2) (fun _ -> expr (depth - 1)) )
  in
  let rec constr depth =
    if depth = 0 then Crel (pick [ Eq; Ne; Lt; Le; Gt; Ge ], expr 1, expr 1)
    else
      match Random.State.int rng 8 with
      | 0 -> Cand (constr (depth - 1), constr (depth - 1))
      | 1 -> Cor (constr (depth - 1), constr (depth - 1))
      | 2 -> Cnot (constr (depth - 1))
      | 3 -> Cstar (constr (depth - 1))
      | 4 -> Cin (expr 1, pick [ "staff"; "hosts" ])
      | 5 -> Csubset (expr 1, expr 1)
      | 6 -> Ccall (pick [ "p"; "q" ], [ expr 1 ])
      | _ -> Cbind (var (), expr 1)
  in
  let entry () =
    let elector = if Random.State.int rng 3 = 0 then Some (role_ref ()) else None in
    {
      head = (role (), args ());
      creds = List.init (Random.State.int rng 3) (fun _ -> role_ref ());
      elector;
      (* an election star is only printable when there is an elector *)
      elect_starred = (elector <> None && Random.State.bool rng);
      revoker = (if Random.State.int rng 4 = 0 then Some (role_ref ()) else None);
      constr = (if Random.State.bool rng then Some (constr 3) else None);
      entry_line = 0;
    }
  in
  let item () =
    match Random.State.int rng 6 with
    | 0 ->
        Import
          { line = 0; service = pick [ "Login"; "Store" ]; tyname = pick [ "userid"; "fileid" ] }
    | 1 ->
        let params = [ "u"; "v" ] in
        Def
          {
            decl_name = role ();
            params;
            param_types =
              (if Random.State.bool rng then [ ("u", pick [ Ty.Int; Ty.Str; Ty.Set "rw"; Ty.Obj "doc" ]) ]
               else []);
            decl_line = 0;
          }
    | _ -> Entry (entry ())
  in
  List.init (1 + Random.State.int rng 5) (fun _ -> item ())

let test_roundtrip_generated () =
  let rng = Random.State.make [| 0xA515 |] in
  for i = 1 to 200 do
    let rf = gen_rolefile rng in
    let printed = Pretty.to_string rf in
    match Parser.parse_result printed with
    | Error e -> Alcotest.failf "case %d: reparse failed: %s\nsource:\n%s" i e printed
    | Ok rf2 ->
        if Ast.strip_lines rf2 <> Ast.strip_lines rf then
          Alcotest.failf "case %d: round trip mismatch:\n%s\nvs\n%s" i printed
            (Pretty.to_string rf2)
  done

(* --- RDL012: statements subsumed by an earlier, weaker same-head one --- *)

let test_rdl012 () =
  (* positive: the later statement's constraint is strictly stronger than
     the earlier unconstrained one — it can never add a membership *)
  let ds = lint "Base(u) <-\nX(u) <- Base(u)*\nX(u) <- Base(u)* : u = \"a\"\n" in
  checki "one subsumption" 1 (count "RDL012" ds);
  let d = diag "RDL012" ds in
  checkb "warning" true (d.Analyze.severity = Analyze.Warning);
  checki "anchored at the later statement" 3 d.Analyze.line;
  (* positive: subsumption through implication between constraints *)
  let ds = lint "Base(u) <-\nY(u) <- Base(u)* : u <> \"z\"\nY(u) <- Base(u)* : u = \"a\"\n" in
  checkb "implied subsumption" true (has "RDL012" ds);
  (* negative: incomparable constraints both contribute *)
  checkb "incomparable" false
    (has "RDL012" (lint "Base(u) <-\nZ(u) <- Base(u)* : u = \"a\"\nZ(u) <- Base(u)* : u = \"b\"\n"));
  (* negative: weaker-later adds memberships; only RDL-clean order warns *)
  checkb "weaker later is fine" false
    (has "RDL012" (lint "Base(u) <-\nW(u) <- Base(u)* : u = \"a\"\nW(u) <- Base(u)*\n"));
  (* negative: identical statements are RDL004's business, not RDL012's *)
  let dup = lint "Base(u) <-\nD(u) <- Base(u) : u = \"a\"\nD(u) <- Base(u) : u = \"a\"\n" in
  checkb "duplicate" true (has "RDL004" dup);
  checkb "not subsumption" false (has "RDL012" dup);
  (* negative: different credentials *)
  checkb "different creds" false
    (has "RDL012" (lint "Base(u) <-\nOther(u) <-\nV(u) <- Base(u)*\nV(u) <- Other(u)* : u = \"a\"\n"))

(* --- every diagnostic from a parsed rolefile carries a source line --- *)

let assert_lines_known where ds =
  List.iter
    (fun d ->
      if d.Analyze.line <= 0 then
        Alcotest.failf "%s: %s has no source line" where (Analyze.diag_to_string d))
    ds

let test_diag_lines_known () =
  (* per-file: one source per diagnostic family *)
  List.iter
    (fun src -> assert_lines_known "per-file" (lint src))
    [
      "Member( <-";
      "Base(u) <-\nLogin(u, h) <- Base(u) : h in hosts\n";
      "Base(u) <-\nSloppy(u) <- Base(u) : v <- 7\n";
      "Base(u) <-\nR(u) <- Base(u) : u <- \"a\" and u <- \"b\"\n";
      "Base(u) <-\nDup(u) <- Base(u)\nDup(u) <- Base(u)\n";
      "def Base(u) u: String\nBase(u, h) <-\n";
      "Base(u) <-\nNever(u) <- Base(u) : x > 5 and x < 3\n";
      "Base(u) <-\nX(u) <- Base(u)*\nX(u) <- Base(u)* : u = \"a\"\n";
    ];
  (* federation-wide: the planted escalation corpus covers OASIS001-008 *)
  let fed =
    FL.make
      [
        member "CorpA" "Boss(c) <-\nLocked(u) <- CorpB.Peer(u)*\nGold(u) <- Locked(u)* <| Boss(c)\n";
        member "CorpB"
          "Peer(u) <- CorpA.Locked(u)*\nPrize(u) <- CorpA.Locked(u)\nBridge(u) <- CorpA.Locked(u)* /\\ Outside.Badge(u)\n";
      ]
  in
  let ds = FL.check ~per_file:true ~collusion_threshold:2 fed in
  List.iter
    (fun code -> checkb (code ^ " planted") true (has code ds))
    [ "OASIS001"; "OASIS006"; "OASIS007"; "OASIS008" ];
  assert_lines_known "federation" ds;
  (* and the on-disk examples *)
  let members =
    Sys.readdir example_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".rdl")
    |> List.sort compare
    |> List.map (fun f ->
           let src =
             In_channel.with_open_text (Filename.concat example_dir f) In_channel.input_all
           in
           { FL.fl_name = Filename.remove_extension f; fl_file = f; fl_rolefile = Parser.parse src })
  in
  assert_lines_known "examples" (FL.check ~per_file:true (FL.make members))

(* --- symbolic prover: soundness and witness structure --- *)

let test_prover_tightening () =
  (* each hop satisfiable, the accumulated path constraint contradictory:
     boolean bound reachable, symbolic prover prunes *)
  let fed =
    FL.make [ member "Inf" "A(u) <-\nB(u) <- A(u)* : u = \"a\"\nC(u) <- B(u)* : u = \"b\"\n" ]
  in
  let holder = ("Inf", "A") and target = ("Inf", "C") in
  checkb "boolean bound keeps it" true (FL.boolean_can_reach fed ~holder ~target);
  checkb "symbolic prover prunes it" false (FL.can_reach fed ~holder ~target);
  checkb "the feasible prefix survives" true (FL.can_reach fed ~holder ~target:("Inf", "B"))

let test_witness_structure () =
  (* blind vs carried chains *)
  let fed = FL.make [ member "G" "H(u) <-\nT(u) <- H(u)\nS(u) <- H(u)*\n" ] in
  let wit target =
    match List.find_opt (fun w -> w.FL.w_target = target) (FL.witnesses fed ~holder:("G", "H")) with
    | Some w -> w
    | None -> Alcotest.failf "no witness for %s" (FL.node_str target)
  in
  let blind = wit ("G", "T") and carried = wit ("G", "S") in
  checkb "unstarred hop is blind" false blind.FL.w_carried;
  checkb "starred hop carries" true carried.FL.w_carried;
  checkb "blind chain raises OASIS006" true (List.mem "OASIS006" (FL.witness_codes blind));
  checkb "carried chain does not" false (List.mem "OASIS006" (FL.witness_codes carried));
  (* elector obligations count as colluders *)
  let fed2 = FL.make [ member "E" "Boss(c) <-\nH(u) <-\nT(u) <- H(u)* <| Boss(c)\n" ] in
  let w =
    match
      List.find_opt (fun w -> w.FL.w_target = ("E", "T")) (FL.witnesses fed2 ~holder:("E", "H"))
    with
    | Some w -> w
    | None -> Alcotest.fail "no witness through the election"
  in
  checkb "holder plus elector" true (w.FL.w_colluders = 2);
  checkb "within threshold 2" true
    (List.mem "OASIS007" (FL.witness_codes ~collusion_threshold:2 w));
  checkb "beyond threshold 1" false (List.mem "OASIS007" (FL.witness_codes w));
  (match w.FL.w_hops with
  | [ h ] -> checkb "elector obligation recorded" true (h.FL.h_elector <> None)
  | hops -> Alcotest.failf "expected one hop, got %d" (List.length hops))

let test_prover_soundness_generated () =
  (* property: symbolic can_reach is never looser than the boolean bound,
     over randomly generated federations *)
  let rng = Random.State.make [| 0xE5CA; 7 |] in
  let constrs = [ ""; ""; " : u = \"a\""; " : u <> \"a\""; " : u = \"b\"" ] in
  for case = 1 to 30 do
    let nsvc = 2 + Random.State.int rng 2 in
    let nrole = 3 + Random.State.int rng 2 in
    let members =
      List.init nsvc (fun i ->
          let buf = Buffer.create 128 in
          for j = 0 to nrole - 1 do
            if Random.State.int rng 4 = 0 then Buffer.add_string buf (Printf.sprintf "R%d(u) <-\n" j)
            else begin
              let si = Random.State.int rng nsvc and sj = Random.State.int rng nrole in
              let star = if Random.State.bool rng then "*" else "" in
              let c = List.nth constrs (Random.State.int rng (List.length constrs)) in
              let prefix = if si = i then "" else Printf.sprintf "S%d." si in
              Buffer.add_string buf
                (Printf.sprintf "R%d(u) <- %sR%d(u)%s%s\n" j prefix sj star c)
            end
          done;
          member (Printf.sprintf "S%d" i) (Buffer.contents buf))
    in
    let fed = FL.make members in
    let nodes =
      List.concat_map (fun i -> List.init nrole (fun j -> (Printf.sprintf "S%d" i, Printf.sprintf "R%d" j)))
        (List.init nsvc Fun.id)
    in
    List.iter
      (fun holder ->
        List.iter
          (fun target ->
            if FL.can_reach fed ~holder ~target && not (FL.boolean_can_reach fed ~holder ~target)
            then
              Alcotest.failf "case %d: symbolic looser than boolean for %s -> %s" case
                (FL.node_str holder) (FL.node_str target))
          nodes;
        (* and every escalation target carries a witness chain ending at it *)
        List.iter
          (fun w ->
            match List.rev w.FL.w_hops with
            | last :: _ -> checkb "chain ends at target" true (last.FL.h_node = w.FL.w_target)
            | [] -> Alcotest.fail "empty witness chain")
          (FL.escalation_witnesses fed ~holder))
      nodes
  done

(* --- Service.create gating on the federation-wide codes --- *)

let test_service_gating_federation () =
  let mentions code e =
    let n = String.length code in
    let rec go i = i + n <= String.length e && (String.sub e i n = code || go (i + 1)) in
    go 0
  in
  let _, net, reg = make_world () in
  (match Service.create net (Net.add_host net "hA") reg ~name:"A" ~rolefile:"Base(u) <-\n" () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "A should register: %s" e);
  (* a joining service referencing a role A lacks: OASIS003 gates at `Warn *)
  (match
     Service.create net (Net.add_host net "hB") reg ~name:"B" ~rolefile:"In(u) <- A.Nope(u)\n" ()
   with
  | Error e -> checkb "names OASIS003" true (mentions "OASIS003" e)
  | Ok _ -> Alcotest.fail "federation error should gate registration");
  (* the same reference to an unregistered service is outside the
     federation: no error, registration proceeds *)
  (match
     Service.create net (Net.add_host net "hC") reg ~name:"C" ~rolefile:"In(u) <- Zed.Nope(u)\n" ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "external reference should not gate: %s" e);
  (* escalation diagnostics stay warnings: logged, not fatal, at `Warn *)
  match
    Service.create net (Net.add_host net "hD") reg ~name:"D"
      ~rolefile:"Locked(u) <- Zed.Key(u)*\nPrize(u) <- Locked(u)\n" ()
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "OASIS006 is a warning and should not gate: %s" e

let () =
  Alcotest.run "analyze"
    [
      ( "per-file",
        [
          Alcotest.test_case "RDL000 parse errors" `Quick test_rdl000;
          Alcotest.test_case "RDL001 unbound" `Quick test_rdl001_unbound;
          Alcotest.test_case "RDL001 negatives" `Quick test_rdl001_negative;
          Alcotest.test_case "RDL001 unbindable chain" `Quick test_rdl001_unbindable_chain;
          Alcotest.test_case "RDL002 unused binder" `Quick test_rdl002;
          Alcotest.test_case "RDL003 rebind" `Quick test_rdl003;
          Alcotest.test_case "RDL004 duplicates" `Quick test_rdl004;
          Alcotest.test_case "RDL005 arity" `Quick test_rdl005;
          Alcotest.test_case "RDL006 types" `Quick test_rdl006;
          Alcotest.test_case "RDL007 unknown function" `Quick test_rdl007;
          Alcotest.test_case "RDL008 unknown group" `Quick test_rdl008;
          Alcotest.test_case "RDL009 unused import" `Quick test_rdl009;
          Alcotest.test_case "RDL010 missing import" `Quick test_rdl010;
          Alcotest.test_case "RDL011 unsatisfiable" `Quick test_rdl011;
          Alcotest.test_case "satisfiability engine" `Quick test_sat_direct;
          Alcotest.test_case "item lines" `Quick test_item_lines;
          Alcotest.test_case "located inference errors" `Quick test_infer_located_line;
          Alcotest.test_case "RDL012 subsumed statements" `Quick test_rdl012;
          Alcotest.test_case "diagnostic lines known" `Quick test_diag_lines_known;
        ] );
      ( "federation",
        [
          Alcotest.test_case "deadlock cycle" `Quick test_federation_deadlock;
          Alcotest.test_case "bootstrapped cycle ok" `Quick test_federation_bootstrapped_cycle;
          Alcotest.test_case "deadlock pair" `Quick test_federation_unreachable;
          Alcotest.test_case "unsat entry unreachable" `Quick test_federation_unreachable_constraint;
          Alcotest.test_case "unknown peer role" `Quick test_federation_unknown_role;
          Alcotest.test_case "revocation gaps" `Quick test_federation_revocation_gaps;
          Alcotest.test_case "per-file toggle" `Quick test_federation_per_file;
          Alcotest.test_case "cross-service signatures" `Quick test_federation_external_sig;
          Alcotest.test_case "escalation queries" `Quick test_escalation;
          Alcotest.test_case "symbolic tightening" `Quick test_prover_tightening;
          Alcotest.test_case "witness structure" `Quick test_witness_structure;
          Alcotest.test_case "soundness on generated federations" `Quick
            test_prover_soundness_generated;
        ] );
      ( "service-gating",
        [
          Alcotest.test_case "errors gate" `Quick test_service_gating_errors;
          Alcotest.test_case "warnings gate only strictly" `Quick test_service_gating_warnings;
          Alcotest.test_case "function universe" `Quick test_service_gating_funcs;
          Alcotest.test_case "registry enumeration" `Quick test_registry_services;
          Alcotest.test_case "federation-wide gating" `Quick test_service_gating_federation;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "compare_rel total" `Quick test_compare_rel_total;
          Alcotest.test_case "composite relops total" `Quick test_composite_relops_total;
          Alcotest.test_case "idl set types" `Quick test_idl_set_type;
          Alcotest.test_case "constr_vars accumulator" `Quick test_constr_vars_deep;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "on-disk examples" `Quick test_roundtrip_examples;
          Alcotest.test_case "generated rolefiles" `Quick test_roundtrip_generated;
        ] );
    ]
