test/test_oasis.mli:
