module Net = Oasis_sim.Net
module Engine = Oasis_sim.Engine
module Clock = Oasis_sim.Clock

type delivery = { d_seq : int; d_items : (int * Event.t) list; d_horizon : float }

type session = {
  s_net : Net.t;
  s_host : Net.host;
  s_server : server;
  mutable s_id : int;
  mutable s_callbacks : (int * (Event.t -> unit)) list;
  mutable s_horizon : float;
  mutable s_last_seq : int;  (* last in-order delivery seq processed *)
  s_pending : (int, delivery) Hashtbl.t;  (* held out-of-order deliveries *)
  mutable s_stale : bool;
  mutable s_last_rx : float;  (* true time of last traffic; local measure *)
  mutable s_hb_seen : int;
  (* Horizon advances stashed while deliveries are known to be missing: the
     pair is (best horizon seen, delivery seq it is contingent on).  Without
     this, a heartbeat racing a resent event could release a [without]
     candidate that a late blocker should kill. *)
  mutable s_stash_horizon : float;
  mutable s_stash_upto : int;
  mutable s_on_horizon : (float -> unit) list;
  mutable s_on_stale : (bool -> unit) list;
  mutable s_closed : bool;
  mutable s_next_reg : int;
}

and sess_srv = {
  ss_id : int;
  ss_client : session;
  ss_host : Net.host;
  mutable ss_regs : (int * Event.template) list;
  mutable ss_seq : int;  (* next delivery stream seq *)
  ss_buffer : (int, delivery) Hashtbl.t;  (* unacked deliveries *)
  mutable ss_acked : int;
  mutable ss_missed_acks : int;
  mutable ss_live : bool;
}

and server = {
  b_net : Net.t;
  b_host : Net.host;
  b_name : string;
  b_heartbeat : float;
  b_ack_every : int;
  b_retention : float;
  b_horizon_lag : float;
  mutable b_seq : int;
  mutable b_last_stamp : float;
  mutable b_sessions : sess_srv list;
  b_retained : (float * Event.t) Queue.t;  (* (true_time_added, event) *)
  mutable b_admission : credentials:string list -> bool;
  mutable b_reg_filter : credentials:string list -> Event.template -> Event.template option;
  mutable b_next_session : int;
  b_creds : (int, string list) Hashtbl.t;  (* session id -> credentials *)
}

type registration = {
  r_session : session;
  r_id : int;
  mutable r_active : bool;
}

let server_name srv = srv.b_name
let server_host srv = srv.b_host
let sessions srv = List.length srv.b_sessions
let session_server s = s.s_server

let rec create_server net host ~name ?(heartbeat = 1.0) ?(ack_every = 4) ?(retention = 10.0)
    ?(horizon_lag = 0.0) () =
  let srv =
    {
      b_net = net;
      b_host = host;
      b_name = name;
      b_heartbeat = heartbeat;
      b_ack_every = ack_every;
      b_retention = retention;
      b_horizon_lag = horizon_lag;
      b_seq = 0;
      b_last_stamp = neg_infinity;
      b_sessions = [];
      b_retained = Queue.create ();
      b_admission = (fun ~credentials:_ -> true);
      b_reg_filter = (fun ~credentials:_ tpl -> Some tpl);
      b_next_session = 0;
      b_creds = Hashtbl.create 8;
    }
  in
  (* Heartbeats to every live session. *)
  let engine = Net.engine net in
  ignore
    (Engine.every engine ~period:heartbeat (fun () ->
         let horizon = Clock.read (Net.host_clock host) -. srv.b_horizon_lag in
         List.iter
           (fun ss ->
             if ss.ss_live then begin
               (* A server drops a client that has not acknowledged for a
                  long period (§4.10: "can assume that it is no longer
                  running"). *)
               ss.ss_missed_acks <- ss.ss_missed_acks + 1;
               if ss.ss_missed_acks > 8 * srv.b_ack_every then begin
                 ss.ss_live <- false;
                 srv.b_sessions <- List.filter (fun s -> s != ss) srv.b_sessions
               end
               else
                 let client = ss.ss_client in
                 let upto = ss.ss_seq - 1 in
                 Net.send net ~category:"evt.heartbeat" ~size:24 ~src:host ~dst:ss.ss_host
                   (fun () -> client_heartbeat client horizon upto)
             end)
           srv.b_sessions));
  srv

and client_heartbeat s horizon upto =
  if not s.s_closed then begin
    rx s;
    s.s_hb_seen <- s.s_hb_seen + 1;
    if s.s_last_seq >= upto then advance_horizon s horizon
    else begin
      (* Deliveries outstanding: the horizon is only safe once they land. *)
      if horizon > s.s_stash_horizon then begin
        s.s_stash_horizon <- horizon;
        s.s_stash_upto <- max s.s_stash_upto upto
      end;
      let srv = s.s_server in
      let from = s.s_last_seq + 1 in
      Net.send s.s_net ~category:"evt.nack" ~size:16 ~src:s.s_host ~dst:srv.b_host (fun () ->
          server_nack srv s.s_id from)
    end;
    if s.s_hb_seen mod s.s_server.b_ack_every = 0 then
      let last = s.s_last_seq in
      let srv = s.s_server in
      Net.send s.s_net ~category:"evt.ack" ~size:16 ~src:s.s_host ~dst:srv.b_host (fun () ->
          server_ack srv s.s_id last)
  end

and rx s =
  s.s_last_rx <- Engine.now (Net.engine s.s_net);
  if s.s_stale then begin
    s.s_stale <- false;
    List.iter (fun f -> f false) s.s_on_stale;
    (* Resynchronise: ask the server to resend anything we missed. *)
    let srv = s.s_server in
    let from = s.s_last_seq + 1 in
    Net.send s.s_net ~category:"evt.nack" ~size:16 ~src:s.s_host ~dst:srv.b_host (fun () ->
        server_nack srv s.s_id from)
  end

and advance_horizon s h =
  if h > s.s_horizon then begin
    s.s_horizon <- h;
    List.iter (fun f -> f h) s.s_on_horizon
  end

and server_ack srv sid last =
  match List.find_opt (fun ss -> ss.ss_id = sid) srv.b_sessions with
  | None -> ()
  | Some ss ->
      ss.ss_missed_acks <- 0;
      if last > ss.ss_acked then begin
        for seq = ss.ss_acked + 1 to last do
          Hashtbl.remove ss.ss_buffer seq
        done;
        ss.ss_acked <- last
      end

and server_nack srv sid from =
  match List.find_opt (fun ss -> ss.ss_id = sid) srv.b_sessions with
  | None -> ()
  | Some ss ->
      let seqs = Hashtbl.fold (fun k _ acc -> if k >= from then k :: acc else acc) ss.ss_buffer [] in
      List.iter
        (fun seq ->
          let d = Hashtbl.find ss.ss_buffer seq in
          let client = ss.ss_client in
          Net.send srv.b_net ~category:"evt.resend" ~size:(64 * List.length d.d_items)
            ~src:srv.b_host ~dst:ss.ss_host (fun () -> client_deliver client d))
        (List.sort Int.compare seqs)

and client_deliver s d =
  if not s.s_closed then begin
    rx s;
    if d.d_seq <= s.s_last_seq then () (* duplicate *)
    else if d.d_seq = s.s_last_seq + 1 then begin
      process_delivery s d;
      let last_horizon = ref d.d_horizon in
      (* Drain any held out-of-order deliveries that are now in order. *)
      let rec drain () =
        match Hashtbl.find_opt s.s_pending (s.s_last_seq + 1) with
        | Some next ->
            Hashtbl.remove s.s_pending next.d_seq;
            process_delivery s next;
            last_horizon := next.d_horizon;
            drain ()
        | None -> ()
      in
      drain ();
      (* An in-order horizon is safe: everything the server sent before it
         has been processed.  Release any stashed heartbeat horizon that was
         waiting on these deliveries. *)
      advance_horizon s !last_horizon;
      if s.s_last_seq >= s.s_stash_upto then advance_horizon s s.s_stash_horizon
    end
    else begin
      (* Out of order: hold, stash the horizon contingent on the gap, nack. *)
      Hashtbl.replace s.s_pending d.d_seq d;
      if d.d_horizon > s.s_stash_horizon then begin
        s.s_stash_horizon <- d.d_horizon;
        s.s_stash_upto <- max s.s_stash_upto d.d_seq
      end;
      let srv = s.s_server in
      let from = s.s_last_seq + 1 in
      Net.send s.s_net ~category:"evt.nack" ~size:16 ~src:s.s_host ~dst:srv.b_host (fun () ->
          server_nack srv s.s_id from)
    end
  end

and process_delivery s d =
  s.s_last_seq <- d.d_seq;
  List.iter
    (fun (reg_id, event) ->
      match List.assoc_opt reg_id s.s_callbacks with
      | Some cb -> cb event
      | None -> () (* deregistered while in flight *))
    d.d_items

let set_admission srv f = srv.b_admission <- f
let set_registration_filter srv f = srv.b_reg_filter <- f

let server_horizon srv =
  Clock.read (Net.host_clock srv.b_host) -. srv.b_horizon_lag

let purge_retained srv =
  let now = Engine.now (Net.engine srv.b_net) in
  let rec go () =
    match Queue.peek_opt srv.b_retained with
    | Some (t, _) when now -. t > srv.b_retention ->
        ignore (Queue.pop srv.b_retained);
        go ()
    | _ -> ()
  in
  go ()

let push_delivery srv ss items =
  let d = { d_seq = ss.ss_seq; d_items = items; d_horizon = server_horizon srv } in
  ss.ss_seq <- ss.ss_seq + 1;
  Hashtbl.replace ss.ss_buffer d.d_seq d;
  let client = ss.ss_client in
  Net.send srv.b_net ~category:"evt.deliver" ~size:(48 + (64 * List.length items))
    ~src:srv.b_host ~dst:ss.ss_host (fun () -> client_deliver client d)

let signal srv ?stamp name params =
  let stamp =
    match stamp with
    | Some s -> s
    | None ->
        (* Monotone stamps keep the advertised horizon honest. *)
        let c = Clock.read (Net.host_clock srv.b_host) in
        max c (srv.b_last_stamp +. 1e-9)
  in
  srv.b_last_stamp <- max srv.b_last_stamp stamp;
  let event = Event.make ~name ~source:srv.b_name ~stamp ~seq:srv.b_seq params in
  srv.b_seq <- srv.b_seq + 1;
  purge_retained srv;
  Queue.push (Engine.now (Net.engine srv.b_net), event) srv.b_retained;
  List.iter
    (fun ss ->
      if ss.ss_live then
        let items =
          List.filter_map
            (fun (reg_id, tpl) ->
              match Event.matches tpl event with
              | Some _ -> Some (reg_id, event)
              | None -> None)
            ss.ss_regs
        in
        if items <> [] then push_delivery srv ss items)
    srv.b_sessions;
  event

(* --- client operations --- *)

let connect net host srv ?(credentials = []) ~on_result () =
  let session =
    {
      s_net = net;
      s_host = host;
      s_server = srv;
      s_id = -1;
      s_callbacks = [];
      s_horizon = neg_infinity;
      s_last_seq = -1;
      s_pending = Hashtbl.create 4;
      s_stale = false;
      s_last_rx = Engine.now (Net.engine net);
      s_hb_seen = 0;
      s_stash_horizon = neg_infinity;
      s_stash_upto = -1;
      s_on_horizon = [];
      s_on_stale = [];
      s_closed = false;
      s_next_reg = 0;
    }
  in
  Net.rpc net ~category:"evt.connect" ~size:(64 + (16 * List.length credentials)) ~src:host
    ~dst:srv.b_host
    (fun () ->
      if not (srv.b_admission ~credentials) then Error "admission denied"
      else begin
        let id = srv.b_next_session in
        srv.b_next_session <- id + 1;
        Hashtbl.replace srv.b_creds id credentials;
        let ss =
          {
            ss_id = id;
            ss_client = session;
            ss_host = host;
            ss_regs = [];
            ss_seq = 0;
            ss_buffer = Hashtbl.create 16;
            ss_acked = -1;
            ss_missed_acks = 0;
            ss_live = true;
          }
        in
        srv.b_sessions <- ss :: srv.b_sessions;
        Ok id
      end)
    (fun result ->
      match result with
      | Error e -> on_result (Error e)
      | Ok id ->
          session.s_id <- id;
          (* Staleness detector: a local timer, needing no server traffic. *)
          let engine = Net.engine net in
          ignore
            (Engine.every engine ~period:(srv.b_heartbeat /. 2.0) (fun () ->
                 if (not session.s_closed) && not session.s_stale then
                   if Engine.now engine -. session.s_last_rx > 1.5 *. srv.b_heartbeat then begin
                     session.s_stale <- true;
                     List.iter (fun f -> f true) session.s_on_stale
                   end));
          on_result (Ok session))

let find_sess srv sid = List.find_opt (fun ss -> ss.ss_id = sid) srv.b_sessions

let register session ?since tpl callback =
  let reg_id = session.s_next_reg in
  session.s_next_reg <- reg_id + 1;
  session.s_callbacks <- (reg_id, callback) :: session.s_callbacks;
  let srv = session.s_server in
  let sid = session.s_id in
  Net.send session.s_net ~category:"evt.register" ~size:96 ~src:session.s_host ~dst:srv.b_host
    (fun () ->
      match find_sess srv sid with
      | None -> ()
      | Some ss -> (
          let credentials = Option.value ~default:[] (Hashtbl.find_opt srv.b_creds sid) in
          match srv.b_reg_filter ~credentials tpl with
          | None -> () (* policy rejected: the client simply never hears events *)
          | Some tpl ->
              ss.ss_regs <- (reg_id, tpl) :: ss.ss_regs;
              (* Retrospective registration: replay retained matching events
                 from [since] in stamp order (§6.8.1). *)
              (match since with
              | None -> ()
              | Some since ->
                  purge_retained srv;
                  let replay =
                    Queue.fold
                      (fun acc (_, e) ->
                        if e.Event.stamp >= since && Event.matches tpl e <> None then e :: acc
                        else acc)
                      [] srv.b_retained
                    |> List.rev
                  in
                  if replay <> [] then
                    push_delivery srv ss (List.map (fun e -> (reg_id, e)) replay))));
  { r_session = session; r_id = reg_id; r_active = true }

let deregister reg =
  if reg.r_active then begin
    reg.r_active <- false;
    let session = reg.r_session in
    session.s_callbacks <- List.remove_assoc reg.r_id session.s_callbacks;
    let srv = session.s_server in
    let sid = session.s_id in
    let reg_id = reg.r_id in
    Net.send session.s_net ~category:"evt.deregister" ~size:16 ~src:session.s_host
      ~dst:srv.b_host (fun () ->
        match find_sess srv sid with
        | None -> ()
        | Some ss -> ss.ss_regs <- List.remove_assoc reg_id ss.ss_regs)
  end

let pre_register session tpl =
  let srv = session.s_server in
  Net.send session.s_net ~category:"evt.preregister" ~size:96 ~src:session.s_host
    ~dst:srv.b_host (fun () ->
      (* Retention is server-wide and shared between clients (§6.8.1), so
         pre-registration costs the server nothing extra per client; it is
         accounted so experiments can compare traffic. *)
      ignore tpl)

let horizon session = session.s_horizon
let stale session = session.s_stale
let on_horizon session f = session.s_on_horizon <- f :: session.s_on_horizon
let on_staleness session f = session.s_on_stale <- f :: session.s_on_stale

let close session =
  if not session.s_closed then begin
    session.s_closed <- true;
    let srv = session.s_server in
    let sid = session.s_id in
    Net.send session.s_net ~category:"evt.close" ~size:16 ~src:session.s_host ~dst:srv.b_host
      (fun () -> srv.b_sessions <- List.filter (fun ss -> ss.ss_id <> sid) srv.b_sessions)
  end
