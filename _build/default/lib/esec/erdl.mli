(** ERDL: RDL extended with event-visibility statements (ch. 7).

    Event services do not fit the request/response model: the security
    question is {e which event instances a client may be notified of}
    (§7.2).  An ERDL policy is a list of visibility rules:

    {v
    allow Login.LoggedOn(u, h) : Sighted(u)
    allow Namer.OwnsBadge(u, b) : Seen(b, ANY)
    deny  ANY : Seen(ANY, "directors-office")
    v}

    (ANY is written as a star in the concrete syntax; spelled out here only
    because of OCaml comment lexing.)

    A rule grants (or denies) visibility of events matching the template on
    the right to clients holding the role on the left; variables bound by
    the role's arguments flow into the template (the correlation that makes
    "you may watch {e your own} badge" expressible).  [*] on the left of a
    [deny] matches any client.

    Preprocessing (fig 7.1) happens in stages: (1) parse; (2) resolve each
    rule's role against the local service or a named peer; (3) at session
    admission, instantiate the rules against the client's validated
    credentials, yielding a set of ground {e allowed} templates; (4) at
    registration, intersect the requested template with the allowed set —
    the registration is narrowed or rejected, so unseeable instances are
    never even monitored (§7.4). *)

type rule = {
  allow : bool;
  role : Oasis_rdl.Ast.role_ref option;  (** [None] = any client ([*]) *)
  event : string;  (** event name; ["*"] for any *)
  pats : Oasis_events.Event.pattern list;
}

val parse : string -> (rule list, string) result
val pp_rule : Format.formatter -> rule -> unit

(** Stage 3: a client's visibility, computed from validated credentials. *)
type visibility = {
  vis_allowed : Oasis_events.Event.template list;  (** ground allow templates *)
  vis_denied : Oasis_events.Event.template list;
}

val instantiate :
  rule list ->
  creds:(string * string list * Oasis_rdl.Value.t list) list ->
  visibility
(** [creds] are validated credentials as [(service, roles, args)].  A rule
    matches a credential when its role reference names one of the
    credential's roles (and service) and its literal arguments agree; the
    credential's arguments bind the rule's variables. *)

val intersect :
  Oasis_events.Event.template ->
  Oasis_events.Event.template ->
  Oasis_events.Event.template option
(** Most-specific combination of two templates; [None] if incompatible. *)

val filter :
  visibility -> Oasis_events.Event.template -> Oasis_events.Event.template option
(** Stage 4: narrow a requested template to what the client may see.
    Returns the first non-empty intersection with an allowed template that
    is not contradicted by a deny rule; [None] rejects the registration. *)
