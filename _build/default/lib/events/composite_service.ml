module Net = Oasis_sim.Net

type definition = {
  d_name : string;
  d_vars : string list;  (* parameter order of the re-signalled event *)
  d_detector : Bead.detector;
  mutable d_count : int;
}

type t = {
  cs_broker : Broker.server;
  cs_io : Bead.io;
  mutable cs_defs : definition list;
}

(* Variables of an expression in order of first appearance: these become
   the re-signalled event's parameters. *)
let variables_of comp =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  let from_template (tpl : Event.template) =
    Array.iter (function Event.Var v -> add v | Event.Lit _ | Event.Any -> ()) tpl.Event.pats
  in
  let rec go = function
    | Composite.Base (tpl, side) ->
        from_template tpl;
        List.iter
          (function
            | Composite.Sassign (v, _) -> add v
            | Composite.Scmp _ -> ())
          side
    | Composite.Seq (a, b) | Composite.Or (a, b) | Composite.Without (a, b, _) ->
        go a;
        go b
    | Composite.Whenever c -> go c
    | Composite.Null -> ()
  in
  go comp;
  List.rev !out

let create net host ~name ~upstreams ?(heartbeat = 1.0) ?(horizon_lag = 2.0)
    ?(clock_uncertainty = 0.0) () =
  let broker = Broker.create_server net host ~name ~heartbeat ~horizon_lag () in
  let io = Broker_io.make net host ~clock_uncertainty upstreams in
  { cs_broker = broker; cs_io = io; cs_defs = [] }

let broker t = t.cs_broker

let define t ~signal_as ?env comp =
  if List.exists (fun d -> String.equal d.d_name signal_as) t.cs_defs then
    Error (signal_as ^ " is already defined")
  else begin
    let vars = variables_of comp in
    let this_def = ref None in
    let detector =
      Bead.detect t.cs_io ?env comp ~on_occur:(fun o ->
          match !this_def with
          | None -> ()
          | Some d ->
              d.d_count <- d.d_count + 1;
              let params =
                List.map
                  (fun v ->
                    match List.assoc_opt v o.Bead.env with
                    | Some value -> value
                    | None -> Oasis_rdl.Value.Str "?")
                  d.d_vars
              in
              (* Stamp with the occurrence time: out of order with respect
                 to the server's clock, covered by the horizon lag. *)
              ignore (Broker.signal t.cs_broker ~stamp:o.Bead.at signal_as params))
    in
    let d = { d_name = signal_as; d_vars = vars; d_detector = detector; d_count = 0 } in
    this_def := Some d;
    t.cs_defs <- d :: t.cs_defs;
    Ok ()
  end

let undefine t name =
  let gone, kept = List.partition (fun d -> String.equal d.d_name name) t.cs_defs in
  List.iter (fun d -> Bead.stop d.d_detector) gone;
  t.cs_defs <- kept

let definitions t = List.rev_map (fun d -> d.d_name) t.cs_defs

let detections t name =
  match List.find_opt (fun d -> String.equal d.d_name name) t.cs_defs with
  | Some d -> d.d_count
  | None -> 0
