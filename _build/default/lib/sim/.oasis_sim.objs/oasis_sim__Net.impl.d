lib/sim/net.ml: Clock Engine Hashtbl List Oasis_util Stats String
