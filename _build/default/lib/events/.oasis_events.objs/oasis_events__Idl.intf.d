lib/events/idl.mli: Event Format Oasis_rdl
