(** Interface definition language for services that combine RPC and event
    interfaces (§6.2.1).

    The paper specifies events in an extended RPC IDL; the preprocessor
    emits client/server stubs plus {e constructors} and {e destructors}
    that marshal concrete events into generic event objects.  This module
    is that preprocessor, minus code generation: it parses interface text
    into a typed schema and provides checked constructor/destructor
    functions driven by it.

    Concrete syntax:

    {v
    interface Printer {
      Print(name: String) : Integer;
      Query(jobno: Integer) : Status;
      event Finished(jobno: Integer);
      event Jammed(tray: Integer, fatal: Integer);
    }
    v}

    Types are RDL types: [Integer], [String], a set type [{rwx}], or an
    object type name. *)

type ty = Oasis_rdl.Ty.t

type operation = { op_name : string; op_params : (string * ty) list; op_returns : ty }

type event_decl = { ev_name : string; ev_params : (string * ty) list }

type interface = {
  if_name : string;
  if_operations : operation list;
  if_events : event_decl list;
}

exception Idl_error of string

val parse : string -> (interface, string) result

val find_event : interface -> string -> event_decl option

val construct :
  interface -> string -> Event.value list -> source:string -> ?stamp:float -> unit ->
  (Event.t, string) result
(** Typed event constructor: checks the event is declared and each argument
    inhabits the declared parameter type. *)

val destruct : interface -> Event.t -> ((string * Event.value) list, string) result
(** Typed destructor: returns the event's parameters labelled with their
    declared names; errors if the event is undeclared or malformed. *)

val template_of :
  interface -> string -> (string * Event.pattern) list -> (Event.template, string) result
(** Build a template by naming only the parameters you constrain; the rest
    become wildcards.  Unknown parameter names are errors. *)

val pp : Format.formatter -> interface -> unit
