(** Legacy Unix filing-system adapter (§3.3.3).

    In Unix, access to a file is restricted by the ACLs on the parent
    directories in addition to the ACL on the file itself.  The paper shows
    how to express this scheme in RDL so that interworking with such a
    legacy system can be reasoned about: each node's ACL becomes an entry
    statement, and two generic rules relate directory rights to file
    rights, using extension functions [InDir(f, d)] and [Root(d)]:

    {v
    ACL(r, "/path") <- Login.LoggedOn(u, h) : r = unixacl("...", u)   (per node)
    UseDir(d)       <- ACL(r, d)             : Root(d) and {x} subset r
    UseDir(d)       <- ACL(r, d) /\ UseDir(p) : InDir(d, p) and {x} subset r
    UseFile(f, r)   <- ACL(r, f) /\ UseDir(p) : InDir(f, p)
    v}

    The recursive [UseDir] rule makes the rule set a genuine Datalog
    program; the adapter therefore runs its service in fixpoint-entry mode
    (the evaluation strategy §3.3.3 implies, as opposed to fig 3.2's
    single pass for ordinary rolefiles). *)

type t

val create :
  Oasis_sim.Net.t ->
  Oasis_sim.Net.host ->
  Service.registry ->
  name:string ->
  tree:(string * string) list ->
  (t, string) result
(** [tree] maps absolute paths to their Unix-style ACL strings (see
    {!Acl.unixacl}); it must contain ["/"].  A path is a directory iff some
    other path lies beneath it.  Example:

    [\[ ("/", "root=rwx other=r-x"); ("/home", "other=r-x");
        ("/home/rjh21", "rjh21=rwx staff=r-x");
        ("/home/rjh21/thesis.tex", "rjh21=rw- staff=r--") \]] *)

val service : t -> Service.t

val request_use :
  t ->
  client_host:Oasis_sim.Net.host ->
  client:Principal.vci ->
  login:Cert.rmc ->
  path:string ->
  ((Cert.rmc * string, string) result -> unit) ->
  unit
(** Obtain a [UseFile(path, rights)] certificate; returns it with the
    granted rights characters.  Fails when any enclosing directory denies
    search ('x') permission, exactly as in Unix. *)

val paths : t -> string list
