lib/events/broker_io.ml: Bead Broker Event List Oasis_sim String
