type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = { mutable heap : 'a entry array; mutable size : int; mutable next_seq : int }

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty q = q.size = 0
let length q = q.size

let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow q =
  let cap = max 16 (2 * Array.length q.heap) in
  let heap = Array.make cap q.heap.(0) in
  Array.blit q.heap 0 heap 0 q.size;
  q.heap <- heap

let push q prio value =
  let e = { prio; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  if q.size = 0 && Array.length q.heap = 0 then q.heap <- Array.make 16 e;
  if q.size = Array.length q.heap then grow q;
  q.heap.(q.size) <- e;
  q.size <- q.size + 1;
  (* Sift up. *)
  let i = ref (q.size - 1) in
  while !i > 0 && before q.heap.(!i) q.heap.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = q.heap.(!i) in
    q.heap.(!i) <- q.heap.(p);
    q.heap.(p) <- tmp;
    i := p
  done

let peek q = if q.size = 0 then None else Some (q.heap.(0).prio, q.heap.(0).value)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.size && before q.heap.(l) q.heap.(!smallest) then smallest := l;
        if r < q.size && before q.heap.(r) q.heap.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = q.heap.(!i) in
          q.heap.(!i) <- q.heap.(!smallest);
          q.heap.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.prio, top.value)
  end

let to_list q =
  let entries = Array.sub q.heap 0 q.size in
  Array.sort (fun a b -> if before a b then -1 else if before b a then 1 else 0) entries;
  Array.to_list (Array.map (fun e -> (e.prio, e.value)) entries)

let entries q =
  let entries = Array.sub q.heap 0 q.size in
  Array.sort (fun a b -> if before a b then -1 else if before b a then 1 else 0) entries;
  Array.to_list (Array.map (fun e -> (e.prio, e.seq, e.value)) entries)

(* Restore the heap property around slot [i] after an arbitrary replacement:
   sift up if the new entry beats its parent, otherwise sift down. *)
let repair q i =
  let i = ref i in
  while !i > 0 && before q.heap.(!i) q.heap.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = q.heap.(!i) in
    q.heap.(!i) <- q.heap.(p);
    q.heap.(p) <- tmp;
    i := p
  done;
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < q.size && before q.heap.(l) q.heap.(!smallest) then smallest := l;
    if r < q.size && before q.heap.(r) q.heap.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = q.heap.(!i) in
      q.heap.(!i) <- q.heap.(!smallest);
      q.heap.(!smallest) <- tmp;
      i := !smallest
    end
  done

let remove_seq q seq =
  let found = ref (-1) in
  for i = 0 to q.size - 1 do
    if !found < 0 && q.heap.(i).seq = seq then found := i
  done;
  if !found < 0 then None
  else begin
    let e = q.heap.(!found) in
    q.size <- q.size - 1;
    if !found < q.size then begin
      q.heap.(!found) <- q.heap.(q.size);
      repair q !found
    end;
    Some (e.prio, e.value)
  end
