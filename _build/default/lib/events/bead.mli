(** Push-down bead machine for composite event detection (§6.7).

    An evaluation is a set of {e beads}, each carrying an environment of
    variable bindings.  Beads split at [|] and [-] states, spawn at [$]
    states, and advance when base events matching their (instantiated)
    templates arrive.  Sub-expressions evaluate {e independently}: a delayed
    event source stalls only the beads that genuinely depend on it (§6.4.1,
    fig 6.4) — the property measured by experiment E5.

    The machine is transport-agnostic: it talks to event sources through an
    {!io} record.  {!Broker_io.make} builds one from broker sessions;
    {!Local_io.make} builds a zero-latency in-process source for unit tests
    and benchmarks. *)

type occurrence = { at : float; env : Event.env }

type io = {
  subscribe : Event.template -> since:float -> (Event.t -> unit) -> unit -> unit;
      (** Register interest from a (stamp) time; returns the deregister
          function.  Implementations must replay retained events with
          [stamp >= since] (retrospective registration, §6.8.1). *)
  io_horizon : Event.template list -> float;
      (** Current event-horizon covering all sources that could produce an
          event matching one of the templates (§6.8.2). *)
  on_horizon : (unit -> unit) -> unit -> unit;
      (** Subscribe to horizon advances (any relevant source); returns the
          unsubscribe function. *)
  io_now : unit -> float;  (** local clock *)
  io_after : float -> (unit -> unit) -> unit;  (** local timer *)
  clock_uncertainty : float;
      (** Bound on inter-host clock error, used by the [Probability]
          parameter (§6.8.4). *)
}

type detector

val detect :
  io ->
  ?env:Event.env ->
  ?start:float ->
  Composite.t ->
  on_occur:(occurrence -> unit) ->
  detector
(** Start an evaluation of the expression with the given initial environment
    and logical start time (default: the io clock's now).  [on_occur] fires
    for every occurrence, possibly many times (§6.5). *)

val stop : detector -> unit
(** Kill every live bead and deregister every subscription. *)

val live_beads : detector -> int
(** Number of live beads (subscriptions waiting or candidates held);
    exposed for tests of bead lifecycle management. *)
