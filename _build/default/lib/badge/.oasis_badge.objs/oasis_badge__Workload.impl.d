lib/badge/workload.ml: Array List Oasis_sim Oasis_util Printf Site String
