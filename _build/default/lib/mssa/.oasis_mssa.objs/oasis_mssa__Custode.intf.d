lib/mssa/custode.mli: Byte_segment Oasis_core Oasis_rdl Oasis_sim Types
