lib/esec/policy.ml: Array Erdl Hashtbl List Oasis_core Oasis_events Oasis_sim
