module type S = sig
  val name : string
  val clock_domain : [ `Sim | `Wall ]
  val engine : Oasis_sim.Engine.t
  val net : Oasis_sim.Net.t
  val disk : Oasis_sim.Net.host -> Oasis_store.Disk.t
  val run : ?until:float -> unit -> unit
  val stop : unit -> unit
end

type t = (module S)

let name (module B : S) = B.name
let clock_domain (module B : S) = B.clock_domain

let clock_domain_label b = match clock_domain b with `Sim -> "sim" | `Wall -> "wall"

let engine (module B : S) = B.engine
let net (module B : S) = B.net
let disk (module B : S) host = B.disk host
let run ?until (module B : S) = B.run ?until ()
let stop (module B : S) = B.stop ()
