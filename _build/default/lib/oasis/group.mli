(** Group membership with "interesting credential" records (§4.8.1).

    A group service need not keep a credential record for every possible
    membership — only for the {e interesting} ones: memberships some
    certificate or external server currently depends on.  A hash table maps
    [(group, member)] to its record; lookup creates the record lazily, and a
    membership change flips the corresponding record, cascading revocation
    through the credential record graph. *)

type t

type value = Oasis_rdl.Value.t

val create : Credrec.table -> string -> t
val name : t -> string

val add : t -> value -> unit
val remove : t -> value -> unit
val mem : t -> value -> bool
val members : t -> value list

val credential : t -> value -> Credrec.cref
(** The credential record representing "[value] is a member" — created (with
    the current truth value) if not yet interesting; re-created if a GC
    sweep reclaimed it. *)

val interesting : t -> int
(** Number of live interesting-membership records (for tests/benches). *)
