(* Cross-library integration tests: distributed composite event detection
   over real brokers (§6.7–6.8 on the badge system), the paper's §5.7
   meeting-minutes scenario tying OASIS roles to MSSA files, and an
   end-to-end secure badge monitor. *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Event = Oasis_events.Event
module Broker = Oasis_events.Broker
module Broker_io = Oasis_events.Broker_io
module Bead = Oasis_events.Bead
module Composite = Oasis_events.Composite
module Service = Oasis_core.Service
module Group = Oasis_core.Group
module Principal = Oasis_core.Principal
module Custode = Oasis_mssa.Custode
module Site = Oasis_badge.Site
module Workload = Oasis_badge.Workload
module V = Oasis_rdl.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let fresh_vci =
  let host = Principal.Host.create "clienthost" in
  let domain = Principal.Host.boot_domain host in
  fun () -> Principal.Host.new_vci host domain

(* --- distributed composite detection over brokers --- *)

let test_together_over_brokers () =
  (* Two badge sites, a composite detector connected to both Masters:
     detect Roger and Giles in the same room, distributed end to end. *)
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) engine in
  let reg = Service.create_registry () in
  let a = Site.create net reg ~name:"A" ~rooms:[ "T14"; "T15" ] ~heartbeat:0.5 () in
  Site.register_badge a ~badge:1 ~user:"roger";
  Site.register_badge a ~badge:2 ~user:"giles";
  let monitor_host = Net.add_host net "monitor" in
  let sessions = ref [] in
  Broker.connect net monitor_host (Site.master a)
    ~on_result:(function Ok s -> sessions := s :: !sessions | Error _ -> ())
    ();
  Engine.run ~until:1.0 engine;
  let io = Broker_io.make net monitor_host !sessions in
  let hits = ref [] in
  let _ =
    Bead.detect io ~start:0.0
      (Composite.parse "$Seen(A, R); $Seen(B, R) - Seen(A, Rp)")
      ~on_occur:(fun o -> hits := o :: !hits)
  in
  Engine.run ~until:2.0 engine;
  Site.sight a ~badge:1 ~home:"A" ~room:"T14";
  Engine.run ~until:3.0 engine;
  Site.sight a ~badge:2 ~home:"A" ~room:"T14";
  Engine.run ~until:6.0 engine;
  checkb "together detected over the network" true
    (List.exists
       (fun o ->
         List.assoc_opt "A" o.Bead.env = Some (V.Int 1)
         && List.assoc_opt "B" o.Bead.env = Some (V.Int 2))
       !hits)

let test_without_over_brokers_waits_for_slow_site () =
  (* fig 6.4 on real transport: B's source site is partitioned, so its
     horizon stalls; "A without B" holds its candidate until the partition
     heals and then decides correctly against the late B. *)
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) engine in
  let reg = Service.create_registry () in
  let fast = Site.create net reg ~name:"Fast" ~rooms:[ "f1" ] ~heartbeat:0.5 () in
  let slow = Site.create net reg ~name:"Slow" ~rooms:[ "s1" ] ~heartbeat:0.5 () in
  Site.register_badge fast ~badge:1 ~user:"alice";
  Site.register_badge slow ~badge:2 ~user:"bob";
  let monitor_host = Net.add_host net "monitor" in
  let sessions = ref [] in
  List.iter
    (fun site ->
      Broker.connect net monitor_host (Site.master site)
        ~on_result:(function Ok s -> sessions := s :: !sessions | Error _ -> ())
        ())
    [ fast; slow ];
  Engine.run ~until:1.0 engine;
  let io = Broker_io.make net monitor_host !sessions in
  let hits = ref [] in
  let _ =
    Bead.detect io ~start:0.5
      (Composite.parse {|Master@Fast.Seen(b, r) - Master@Slow.Seen(c, s)|})
      ~on_occur:(fun o -> hits := o :: !hits)
  in
  Engine.run ~until:2.0 engine;
  (* Partition the slow site from the monitor. *)
  Net.partition net (Site.host slow) monitor_host;
  Engine.run ~until:3.0 engine;
  (* bob seen at the slow site (event cannot reach the monitor yet)... *)
  Site.sight slow ~badge:2 ~home:"Slow" ~room:"s1";
  Engine.run ~until:4.0 engine;
  (* ...then alice at the fast site. *)
  Site.sight fast ~badge:1 ~home:"Fast" ~room:"f1";
  Engine.run ~until:6.0 engine;
  checki "candidate held during partition" 0 (List.length !hits);
  (* Heal: the late blocker arrives (resend) and the candidate dies. *)
  Net.heal net (Site.host slow) monitor_host;
  Engine.run ~until:15.0 engine;
  checki "late B correctly blocks A" 0 (List.length !hits)

let test_without_over_brokers_fires_when_clear () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) engine in
  let reg = Service.create_registry () in
  let fast = Site.create net reg ~name:"Fast2" ~rooms:[ "f1" ] ~heartbeat:0.5 () in
  let slow = Site.create net reg ~name:"Slow2" ~rooms:[ "s1" ] ~heartbeat:0.5 () in
  Site.register_badge fast ~badge:1 ~user:"alice";
  let monitor_host = Net.add_host net "monitor2" in
  let sessions = ref [] in
  List.iter
    (fun site ->
      Broker.connect net monitor_host (Site.master site)
        ~on_result:(function Ok s -> sessions := s :: !sessions | Error _ -> ())
        ())
    [ fast; slow ];
  Engine.run ~until:1.0 engine;
  let io = Broker_io.make net monitor_host !sessions in
  let hits = ref [] in
  let _ =
    Bead.detect io ~start:0.5
      (Composite.parse {|Master@Fast2.Seen(b, r) - Master@Slow2.Seen(c, s)|})
      ~on_occur:(fun o -> hits := o :: !hits)
  in
  Engine.run ~until:2.0 engine;
  Site.sight fast ~badge:1 ~home:"Fast2" ~room:"f1";
  (* No B at all: after Slow2's horizon passes A's stamp, A fires. *)
  Engine.run ~until:6.0 engine;
  checki "fires once clear of the horizon" 1 (List.length !hits)

(* --- §5.7: only members of the meeting may read the minutes --- *)

let test_meeting_minutes_acl () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.005) engine in
  let reg = Service.create_registry () in
  let client_host = Net.add_host net "client" in
  let run dt = Engine.run ~until:(Engine.now engine +. dt) engine in
  let login_host = Net.add_host net "login" in
  let login =
    Result.get_ok
      (Service.create net login_host reg ~name:"Login"
         ~rolefile:{|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
|} ())
  in
  (* The meeting service: membership governs minutes access. *)
  let meet_host = Net.add_host net "meet" in
  let meet =
    Result.get_ok
      (Service.create net meet_host reg ~name:"Meet"
         ~rolefile:
           {|
Chair <- Login.LoggedOn("jmb", h)
Candidate(u) <- Login.LoggedOn(u, h)* : u in staff
Member(u) <- Candidate(u)* |>* Chair
|}
         ())
  in
  Group.add (Service.group meet "staff") (V.Str "dm");
  (* The storage custode: the minutes ACL grants read to the meeting group,
     which we keep in sync *by policy* — here the custode consults the Meet
     service's certificate directly via UseFile delegation from the Chair.
     Simpler and fully mechanised: the Chair (who owns the minutes) delegates
     per-file read access to each member, and ejection revokes it. *)
  let cust_host = Net.add_host net "ffc" in
  let cust =
    Result.get_ok (Custode.create net cust_host reg ~name:"FFC" ~admins:[ "jmb" ] ())
  in
  (* jmb logs on, becomes Chair, gets storage access, writes the minutes. *)
  let jmb = fresh_vci () in
  let jmb_login = Service.issue_arbitrary login ~client:jmb ~roles:[ "LoggedOn" ] ~args:[ V.Str "jmb"; V.Str "ely" ] in
  let chair = ref None in
  Service.request_entry meet ~client_host ~client:jmb ~role:"Chair" ~creds:[ jmb_login ]
    (function Ok c -> chair := Some c | Error e -> Alcotest.failf "chair: %s" e);
  run 2.0;
  let chair = Option.get !chair in
  let storage = ref None in
  Custode.request_access cust ~client_host ~client:jmb ~login:jmb_login ~acl:"system"
    (function Ok c -> storage := Some c | Error e -> Alcotest.failf "storage: %s" e);
  run 2.0;
  let storage = Option.get !storage in
  let minutes = Result.get_ok (Custode.create_file cust ~cert:storage ~acl:"system" ()) in
  ignore (Custode.write_file cust ~cert:storage ~file:minutes "AGENDA ...");
  (* dm joins the meeting. *)
  let dm = fresh_vci () in
  let dm_login = Service.issue_arbitrary login ~client:dm ~roles:[ "LoggedOn" ] ~args:[ V.Str "dm"; V.Str "ely" ] in
  let member = ref None in
  Service.request_entry meet ~client_host ~client:dm ~role:"Member" ~creds:[ dm_login ]
    (function Ok c -> member := Some c | Error e -> Alcotest.failf "member: %s" e);
  run 2.0;
  let member = Option.get !member in
  checkb "dm is a member" true (Service.validate meet ~client:dm member = Ok ());
  (* The Chair grants the member read access to the minutes file. *)
  let usefile = ref None in
  Custode.delegate_file_access cust ~client_host ~holder:storage ~file:minutes ~rights:"r"
    ~candidate:dm () (function Ok (c, _) -> usefile := Some c | Error e -> Alcotest.failf "delegate: %s" e);
  run 2.0;
  let usefile = Option.get !usefile in
  checkb "member reads minutes" true (Custode.read_file cust ~cert:usefile ~file:minutes = Ok "AGENDA ...");
  (* The Chair ejects dm from the meeting (role-based revocation) — and the
     minutes access, granted on the back of membership, is revoked by the
     Chair revoking the delegation... here we check the meeting side: *)
  let fired = ref None in
  Service.revoke_role_instance meet ~client_host ~revoker:chair ~role:"Member"
    ~args:[ V.Str "dm" ] (fun r -> fired := Some r);
  run 2.0;
  checkb "ejected" true (!fired = Some (Ok 1));
  checkb "membership revoked" true (Service.validate meet ~client:dm member <> Ok ())

(* --- end-to-end: secured badge monitoring under workload --- *)

let test_secured_monitor_under_workload () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.005) engine in
  let reg = Service.create_registry () in
  let site = Site.create net reg ~name:"HQ" ~rooms:[ "r1"; "r2"; "r3" ] ~heartbeat:0.5 () in
  let wl = Workload.create engine ~seed:3L ~sites:[ site ] ~people_per_site:4 ~mean_dwell:2.0 () in
  (* Namer-issued ownership certificates drive ERDL policy on the Master. *)
  let nsvc_host = Net.add_host net "namersvc" in
  let nsvc =
    Result.get_ok
      (Service.create net nsvc_host reg ~name:"Namer"
         ~rolefile:{|
def OwnsBadge(u, b) u: String b: Integer
OwnsBadge(u, b) <-
|} ())
  in
  let rules =
    match Oasis_esec.Erdl.parse "allow Namer.OwnsBadge(u, b) : Seen(b, *)" with
    | Ok r -> r
    | Error e -> Alcotest.failf "erdl: %s" e
  in
  Oasis_esec.Policy.install (Site.master site) ~registry:reg ~rules;
  Workload.start wl;
  (* A user may only watch their own badge. *)
  let person = List.hd (Workload.people wl) in
  let me = fresh_vci () in
  let my_cert =
    Service.issue_arbitrary nsvc ~client:me ~roles:[ "OwnsBadge" ]
      ~args:[ V.Str person.Workload.p_name; V.Int person.Workload.p_badge ]
  in
  let monitor_host = Net.add_host net "monitor" in
  let mine = ref 0 and others = ref 0 in
  Broker.connect net monitor_host (Site.master site)
    ~credentials:[ Oasis_esec.Policy.token_of_cert my_cert ]
    ~on_result:(function
      | Ok s ->
          ignore
            (Broker.register s (Event.template "Seen" [ Event.Any; Event.Any ]) (fun e ->
                 if e.Event.params.(0) = V.Int person.Workload.p_badge then incr mine
                 else incr others))
      | Error e -> Alcotest.failf "connect: %s" e)
    ();
  Engine.run ~until:120.0 engine;
  checkb "saw own movements" true (!mine > 0);
  checki "never saw others" 0 !others

let () =
  Alcotest.run "integration"
    [
      ( "distributed-composite",
        [
          Alcotest.test_case "together over brokers" `Quick test_together_over_brokers;
          Alcotest.test_case "without waits for slow site" `Quick test_without_over_brokers_waits_for_slow_site;
          Alcotest.test_case "without fires when clear" `Quick test_without_over_brokers_fires_when_clear;
        ] );
      ( "oasis-mssa",
        [ Alcotest.test_case "meeting minutes (§5.7)" `Quick test_meeting_minutes_acl ] );
      ( "end-to-end",
        [ Alcotest.test_case "secured monitor under workload" `Quick test_secured_monitor_under_workload ] );
    ]
