(* Tests for the MSSA: byte-segment custode, file custode with shared ACLs,
   meta-access control, volatile ACLs, per-file delegation, VAC stacks and
   bypassing (chapter 5). *)

module Service = Oasis_core.Service
module Cert = Oasis_core.Cert
module Group = Oasis_core.Group
module Principal = Oasis_core.Principal
module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Byte_segment = Oasis_mssa.Byte_segment
module Custode = Oasis_mssa.Custode
module Vac = Oasis_mssa.Vac
module Bypass = Oasis_mssa.Bypass
module Types = Oasis_mssa.Types
module V = Oasis_rdl.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

type world = {
  engine : Engine.t;
  net : Net.t;
  reg : Service.registry;
  client_host : Net.host;
  login : Service.t;
  mutable hosts : int;
}

let login_rolefile = {|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
|}

let make_world () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.005) engine in
  let client_host = Net.add_host net "client" in
  let reg = Service.create_registry () in
  let login_host = Net.add_host net "loginhost" in
  let login = Result.get_ok (Service.create net login_host reg ~name:"Login" ~rolefile:login_rolefile ()) in
  { engine; net; reg; client_host; login; hosts = 0 }

let add_host w =
  w.hosts <- w.hosts + 1;
  Net.add_host w.net (Printf.sprintf "mssa%d" w.hosts)

let run w dt = Engine.run ~until:(Engine.now w.engine +. dt) w.engine

let fresh_vci =
  let host = Principal.Host.create "clienthost" in
  let domain = Principal.Host.boot_domain host in
  fun () -> Principal.Host.new_vci host domain

let logged_on w user =
  let vci = fresh_vci () in
  (vci, Service.issue_arbitrary w.login ~client:vci ~roles:[ "LoggedOn" ] ~args:[ V.Str user; V.Str "ely" ])

let make_custode ?admins ?backing w name =
  Result.get_ok (Custode.create w.net (add_host w) w.reg ~name ?admins ?backing ())

(* Get a UseAcl certificate for a user on an ACL. *)
let access w custode ~user ~acl =
  let vci, login_cert = logged_on w user in
  let result = ref None in
  Custode.request_access custode ~client_host:w.client_host ~client:vci ~login:login_cert ~acl
    (fun r -> result := Some r);
  run w 2.0;
  match !result with
  | Some (Ok cert) -> (vci, login_cert, cert)
  | Some (Error e) -> Alcotest.failf "access to %s failed: %s" acl e
  | None -> Alcotest.fail "access did not complete"

let access_denied w custode ~user ~acl =
  let vci, login_cert = logged_on w user in
  let result = ref None in
  Custode.request_access custode ~client_host:w.client_host ~client:vci ~login:login_cert ~acl
    (fun r -> result := Some r);
  run w 2.0;
  match !result with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.failf "access to %s unexpectedly granted to %s" acl user
  | None -> Alcotest.fail "no reply"

(* --- byte segment custode --- *)

let test_byte_segment_rw () =
  let w = make_world () in
  let bsc = Result.get_ok (Byte_segment.create w.net (add_host w) w.reg ~name:"BSC") in
  let fc = fresh_vci () in
  let cert = Byte_segment.attach bsc ~client:fc in
  let seg = Result.get_ok (Byte_segment.create_segment bsc ~cert) in
  checkb "write" true (Byte_segment.write bsc ~cert ~seg ~off:0 "hello" = Ok ());
  checkb "read" true (Byte_segment.read bsc ~cert ~seg = Ok "hello");
  checkb "overwrite middle" true (Byte_segment.write bsc ~cert ~seg ~off:2 "LL" = Ok ());
  checkb "merged" true (Byte_segment.read bsc ~cert ~seg = Ok "heLLo");
  checki "one segment" 1 (Byte_segment.segment_count bsc)

let test_byte_segment_isolation () =
  let w = make_world () in
  let bsc = Result.get_ok (Byte_segment.create w.net (add_host w) w.reg ~name:"BSC") in
  let a = fresh_vci () and b = fresh_vci () in
  let ca = Byte_segment.attach bsc ~client:a in
  let cb = Byte_segment.attach bsc ~client:b in
  let seg = Result.get_ok (Byte_segment.create_segment bsc ~cert:ca) in
  checkb "other client blocked" true (Result.is_error (Byte_segment.read bsc ~cert:cb ~seg));
  Service.revoke_certificate (Byte_segment.service bsc) ca;
  checkb "revoked blocked" true (Result.is_error (Byte_segment.read bsc ~cert:ca ~seg))

(* --- shared ACLs --- *)

let test_acl_grant_rights () =
  let w = make_world () in
  let c = make_custode ~admins:[ "root" ] w "FFC" in
  let _, _, root_cert = access w c ~user:"root" ~acl:"system" in
  checkb "create acl" true
    (Custode.create_acl c ~cert:root_cert ~id:"empire" ~entries:"+jeh=rw +%staff=r" ~meta:"system"
     = Ok ());
  Group.add (Service.group (Custode.service c) "staff") (V.Str "dm");
  let _, _, jeh = access w c ~user:"jeh" ~acl:"empire" in
  checkb "jeh gets rw" true (jeh.Cert.args = [ V.Str "empire"; V.Set "rw" ]);
  let _, _, dm = access w c ~user:"dm" ~acl:"empire" in
  checkb "dm gets r via staff" true (dm.Cert.args = [ V.Str "empire"; V.Set "r" ]);
  access_denied w c ~user:"nobody" ~acl:"empire"

let test_acl_meta_access_control () =
  (* §5.3.2: rights over an ACL are governed by its meta ACL. *)
  let w = make_world () in
  let c = make_custode ~admins:[ "root" ] w "FFC" in
  let _, _, root_cert = access w c ~user:"root" ~acl:"system" in
  ignore (Custode.create_acl c ~cert:root_cert ~id:"empire" ~entries:"+jeh=rw" ~meta:"system");
  let _, _, jeh = access w c ~user:"jeh" ~acl:"empire" in
  checkb "jeh cannot modify acl" true
    (Result.is_error (Custode.modify_acl c ~cert:jeh ~id:"empire" ~entries:"+jeh=rwxad"));
  checkb "root can" true
    (Custode.modify_acl c ~cert:root_cert ~id:"empire" ~entries:"+jeh=r" = Ok ())

let test_acl_placement_constraint () =
  (* §5.4.2: the ACL protecting an ACL must reside in the same custode. *)
  let w = make_world () in
  let c = make_custode ~admins:[ "root" ] w "FFC" in
  let _, _, root_cert = access w c ~user:"root" ~acl:"system" in
  checkb "remote meta rejected" true
    (Result.is_error
       (Custode.create_acl c ~cert:root_cert ~id:"bad" ~entries:"+x=r" ~meta:"elsewhere"))

let test_volatile_acl_revokes_on_modify () =
  (* §5.5.2: modifying an ACL revokes certificates issued under it. *)
  let w = make_world () in
  let c = make_custode ~admins:[ "root" ] w "FFC" in
  let _, _, root_cert = access w c ~user:"root" ~acl:"system" in
  ignore (Custode.create_acl c ~cert:root_cert ~id:"empire" ~entries:"+jeh=rw" ~meta:"system");
  let jeh_vci, _, jeh = access w c ~user:"jeh" ~acl:"empire" in
  checkb "valid" true (Service.validate (Custode.service c) ~client:jeh_vci jeh = Ok ());
  ignore (Custode.modify_acl c ~cert:root_cert ~id:"empire" ~entries:"+jeh=r");
  checkb "revoked after ACL change" true
    (Service.validate (Custode.service c) ~client:jeh_vci jeh = Error Service.Revoked);
  let _, _, jeh2 = access w c ~user:"jeh" ~acl:"empire" in
  checkb "fresh cert has new rights" true (jeh2.Cert.args = [ V.Str "empire"; V.Set "r" ])

let test_group_revocation_cascades_to_files () =
  let w = make_world () in
  let c = make_custode ~admins:[ "root" ] w "FFC" in
  let _, _, root_cert = access w c ~user:"root" ~acl:"system" in
  ignore (Custode.create_acl c ~cert:root_cert ~id:"empire" ~entries:"+%staff=rw" ~meta:"system");
  Group.add (Service.group (Custode.service c) "staff") (V.Str "dm");
  let dm_vci, _, dm = access w c ~user:"dm" ~acl:"empire" in
  checkb "valid" true (Service.validate (Custode.service c) ~client:dm_vci dm = Ok ());
  Group.remove (Service.group (Custode.service c) "staff") (V.Str "dm");
  checkb "fired from staff, access revoked" true
    (Service.validate (Custode.service c) ~client:dm_vci dm = Error Service.Revoked)

let test_logout_cascades_to_files () =
  let w = make_world () in
  let c = make_custode ~admins:[ "root" ] w "FFC" in
  let _, _, root_cert = access w c ~user:"root" ~acl:"system" in
  ignore (Custode.create_acl c ~cert:root_cert ~id:"p" ~entries:"+dm=rw" ~meta:"system");
  let dm_vci, dm_login, dm = access w c ~user:"dm" ~acl:"p" in
  run w 3.0;
  checkb "valid" true (Service.validate (Custode.service c) ~client:dm_vci dm = Ok ());
  Service.revoke_certificate w.login dm_login;
  run w 3.0;
  checkb "file access revoked on logout" true
    (Service.validate (Custode.service c) ~client:dm_vci dm <> Ok ())

(* --- files --- *)

let with_project_custode f =
  let w = make_world () in
  let c = make_custode ~admins:[ "root" ] w "FFC" in
  let _, _, root_cert = access w c ~user:"root" ~acl:"system" in
  ignore (Custode.create_acl c ~cert:root_cert ~id:"proj" ~entries:"+dm=adrwx +%staff=r" ~meta:"system");
  f w c root_cert

let test_file_lifecycle () =
  with_project_custode (fun w c _root ->
      let dm_vci, _, dm = access w c ~user:"dm" ~acl:"proj" in
      let fid = Result.get_ok (Custode.create_file c ~cert:dm ~acl:"proj" ()) in
      checkb "write" true (Custode.write_file c ~cert:dm ~file:fid "contents" = Ok ());
      checkb "read" true (Custode.read_file c ~cert:dm ~file:fid = Ok "contents");
      (match Custode.stat_file c ~cert:dm ~file:fid with
      | Ok (acl, kind) ->
          checks "acl" "proj" acl;
          checkb "flat" true (kind = Types.Flat)
      | Error e -> Alcotest.failf "stat: %s" e);
      checkb "delete" true (Custode.delete_file c ~cert:dm ~file:fid = Ok ());
      checkb "gone" true (Result.is_error (Custode.read_file c ~cert:dm ~file:fid));
      ignore dm_vci)

let test_file_rights_enforced () =
  with_project_custode (fun w c _root ->
      Group.add (Service.group (Custode.service c) "staff") (V.Str "bob");
      let _, _, dm = access w c ~user:"dm" ~acl:"proj" in
      let fid = Result.get_ok (Custode.create_file c ~cert:dm ~acl:"proj" ()) in
      ignore (Custode.write_file c ~cert:dm ~file:fid "secret");
      let _, _, bob = access w c ~user:"bob" ~acl:"proj" in
      checkb "staff read ok" true (Custode.read_file c ~cert:bob ~file:fid = Ok "secret");
      checkb "staff write denied" true
        (Result.is_error (Custode.write_file c ~cert:bob ~file:fid "vandalism"));
      checkb "staff cannot create" true
        (Result.is_error (Custode.create_file c ~cert:bob ~acl:"proj" ())))

let test_shared_acl_covers_many_files () =
  (* §5.4: one certificate covers every file under the ACL. *)
  with_project_custode (fun w c _root ->
      let _, _, dm = access w c ~user:"dm" ~acl:"proj" in
      let files =
        List.init 20 (fun _ -> Result.get_ok (Custode.create_file c ~cert:dm ~acl:"proj" ()))
      in
      List.iter
        (fun fid -> checkb "covered" true (Custode.write_file c ~cert:dm ~file:fid "x" = Ok ()))
        files;
      checki "two ACLs for 22 files" 2 (Custode.acl_count c))

let test_structured_files () =
  with_project_custode (fun w c _root ->
      let _, _, dm = access w c ~user:"dm" ~acl:"proj" in
      let parent =
        Result.get_ok (Custode.create_file c ~cert:dm ~acl:"proj" ~kind:Types.Structured ())
      in
      let child = Result.get_ok (Custode.create_file c ~cert:dm ~acl:"proj" ()) in
      let ref_ = { Types.fr_custode = Custode.name c; fr_id = child } in
      checkb "add child" true (Custode.add_child c ~cert:dm ~file:parent ref_ = Ok ());
      checkb "children listed" true (Custode.children c ~cert:dm ~file:parent = Ok [ ref_ ]);
      let flat = Result.get_ok (Custode.create_file c ~cert:dm ~acl:"proj" ()) in
      checkb "flat refuses children" true
        (Result.is_error (Custode.add_child c ~cert:dm ~file:flat ref_)))

let test_continuous_media_ops () =
  (* §5.3.1: continuous media protect play/record, not generic read/write
     semantics; a flat file refuses them. *)
  with_project_custode (fun w c _root ->
      let _, _, dm = access w c ~user:"dm" ~acl:"proj" in
      let media =
        Result.get_ok (Custode.create_file c ~cert:dm ~acl:"proj" ~kind:Types.Continuous ())
      in
      checkb "record" true (Custode.record_file c ~cert:dm ~file:media "AUDIO" = Ok ());
      checkb "play" true (Custode.play_file c ~cert:dm ~file:media = Ok "AUDIO");
      Group.add (Service.group (Custode.service c) "staff") (V.Str "bob");
      let _, _, bob = access w c ~user:"bob" ~acl:"proj" in
      checkb "staff plays" true (Custode.play_file c ~cert:bob ~file:media = Ok "AUDIO");
      checkb "staff cannot record" true
        (Result.is_error (Custode.record_file c ~cert:bob ~file:media "x"));
      let flat = Result.get_ok (Custode.create_file c ~cert:dm ~acl:"proj" ()) in
      checkb "flat refuses play" true (Result.is_error (Custode.play_file c ~cert:dm ~file:flat)))

let test_container_accounting () =
  with_project_custode (fun w c _root ->
      let _, _, dm = access w c ~user:"dm" ~acl:"proj" in
      let f1 = Result.get_ok (Custode.create_file c ~cert:dm ~acl:"proj" ~container:"acct" ()) in
      ignore (Custode.write_file c ~cert:dm ~file:f1 "12345");
      let files, bytes = Custode.container_usage c "acct" in
      checki "one file" 1 files;
      checki "five bytes" 5 bytes)

let test_backed_custode_uses_segments () =
  let w = make_world () in
  let bsc = Result.get_ok (Byte_segment.create w.net (add_host w) w.reg ~name:"BSC") in
  let c = make_custode ~admins:[ "root" ] ~backing:bsc w "FFC" in
  let _, _, root_cert = access w c ~user:"root" ~acl:"system" in
  ignore (Custode.create_acl c ~cert:root_cert ~id:"p" ~entries:"+dm=rw" ~meta:"system");
  let _, _, dm = access w c ~user:"dm" ~acl:"p" in
  let fid = Result.get_ok (Custode.create_file c ~cert:dm ~acl:"p" ()) in
  checkb "write through" true (Custode.write_file c ~cert:dm ~file:fid "backed data" = Ok ());
  checkb "read through" true (Custode.read_file c ~cert:dm ~file:fid = Ok "backed data");
  checkb "segment allocated below" true (Byte_segment.segment_count bsc >= 1)

(* --- per-file delegation (§5.4.3) --- *)

let test_delegate_file_access () =
  with_project_custode (fun w c _root ->
      let _, _, dm = access w c ~user:"dm" ~acl:"proj" in
      let fid = Result.get_ok (Custode.create_file c ~cert:dm ~acl:"proj" ()) in
      ignore (Custode.write_file c ~cert:dm ~file:fid "for the printer");
      let printer = fresh_vci () in
      let result = ref None in
      Custode.delegate_file_access c ~client_host:w.client_host ~holder:dm ~file:fid ~rights:"r"
        ~candidate:printer () (fun r -> result := Some r);
      run w 2.0;
      let usefile, rcert =
        match !result with
        | Some (Ok x) -> x
        | Some (Error e) -> Alcotest.failf "delegate: %s" e
        | None -> Alcotest.fail "no reply"
      in
      checkb "printer reads one file" true
        (Custode.read_file c ~cert:usefile ~file:fid = Ok "for the printer");
      checkb "but cannot write" true
        (Result.is_error (Custode.write_file c ~cert:usefile ~file:fid "x"));
      let done_ = ref None in
      Service.request_revocation (Custode.service c) ~client_host:w.client_host rcert (fun r ->
          done_ := Some r);
      run w 2.0;
      checkb "revocation ok" true (!done_ = Some (Ok ()));
      checkb "printer blocked" true (Result.is_error (Custode.read_file c ~cert:usefile ~file:fid)))

let test_delegate_cannot_exceed_rights () =
  with_project_custode (fun w c _root ->
      Group.add (Service.group (Custode.service c) "staff") (V.Str "bob");
      let _, _, bob = access w c ~user:"bob" ~acl:"proj" in
      let _, _, dm = access w c ~user:"dm" ~acl:"proj" in
      let fid = Result.get_ok (Custode.create_file c ~cert:dm ~acl:"proj" ()) in
      let result = ref None in
      Custode.delegate_file_access c ~client_host:w.client_host ~holder:bob ~file:fid ~rights:"w"
        ~candidate:(fresh_vci ()) () (fun r -> result := Some r);
      run w 2.0;
      checkb "refused" true (match !result with Some (Error _) -> true | _ -> false))

let test_delegated_cert_dies_with_acl () =
  with_project_custode (fun w c root ->
      let _, _, dm = access w c ~user:"dm" ~acl:"proj" in
      let fid = Result.get_ok (Custode.create_file c ~cert:dm ~acl:"proj" ()) in
      let result = ref None in
      Custode.delegate_file_access c ~client_host:w.client_host ~holder:dm ~file:fid ~rights:"r"
        ~candidate:(fresh_vci ()) () (fun r -> result := Some r);
      run w 2.0;
      let usefile, _ = match !result with Some (Ok x) -> x | _ -> Alcotest.fail "delegate" in
      ignore (Custode.modify_acl c ~cert:root ~id:"proj" ~entries:"+dm=r");
      checkb "ACL change kills delegated cert" true
        (Result.is_error (Custode.read_file c ~cert:usefile ~file:fid)))

(* --- VAC stacks and bypassing (§5.6) --- *)

let build_stack w ~depth =
  let bottom = make_custode ~admins:[ "root" ] w "Bottom" in
  let _, _, root_cert = access w bottom ~user:"root" ~acl:"system" in
  ignore (Custode.create_acl bottom ~cert:root_cert ~id:"vacdata" ~entries:"+vac0=adrwx" ~meta:"system");
  let _, _, bottom_cert = access w bottom ~user:"vac0" ~acl:"vacdata" in
  let file = Result.get_ok (Custode.create_file bottom ~cert:bottom_cert ~acl:"vacdata" ()) in
  ignore (Custode.write_file bottom ~cert:bottom_cert ~file "stack data");
  let rec build i below below_cert =
    if i > depth then (below, below_cert)
    else
      let name = Printf.sprintf "Vac%d" i in
      let vac =
        Result.get_ok (Vac.create w.net (add_host w) w.reg ~name ~below ~below_cert)
      in
      let client = fresh_vci () in
      let cert = Vac.grant vac ~client in
      build (i + 1) (Vac.Below_vac vac) cert
  in
  match build 1 (Vac.Below_custode bottom) bottom_cert with
  | Vac.Below_vac top, top_cert -> (bottom, top, top_cert, file)
  | _ -> Alcotest.fail "stack of depth 0"

let test_vac_stack_read () =
  let w = make_world () in
  let _, top, top_cert, file = build_stack w ~depth:3 in
  checki "stack depth" 4 (Vac.depth top);
  let result = ref None in
  Vac.read top ~client_host:w.client_host ~cert:top_cert ~file (fun r -> result := Some r);
  run w 3.0;
  checkb "read through stack" true (!result = Some (Ok "stack data"))

let test_vac_search_added_value () =
  let w = make_world () in
  let _, top, top_cert, file = build_stack w ~depth:1 in
  let done_ = ref None in
  Vac.write top ~client_host:w.client_host ~cert:top_cert ~file "hello indexed world"
    (fun r -> done_ := Some r);
  run w 3.0;
  checkb "write ok" true (!done_ = Some (Ok ()));
  let found = ref None in
  Vac.search top ~client_host:w.client_host ~cert:top_cert "indexed" (fun r -> found := Some r);
  run w 3.0;
  checkb "search finds file" true (!found = Some (Ok [ file ]))

let test_vac_rejects_foreign_cert () =
  let w = make_world () in
  let _, top, _top_cert, file = build_stack w ~depth:1 in
  let _bogus_holder, bogus = logged_on w "eve" in
  let result = ref None in
  Vac.read top ~client_host:w.client_host ~cert:bogus ~file (fun r -> result := Some r);
  run w 3.0;
  checkb "foreign cert refused" true (match !result with Some (Error _) -> true | _ -> false)

let test_bypass_cold_and_warm () =
  let w = make_world () in
  let bottom, top, top_cert, file = build_stack w ~depth:3 in
  let bp = Bypass.create bottom in
  Bypass.register_route bp ~top;
  let read () =
    let result = ref None in
    Bypass.read bp ~client_host:w.client_host ~cert:top_cert ~file (fun r -> result := Some r);
    run w 3.0;
    !result
  in
  checkb "cold bypass read" true (read () = Some (Ok "stack data"));
  checki "one callback" 1 (Bypass.callbacks_made bp);
  checkb "warm bypass read" true (read () = Some (Ok "stack data"));
  checki "no further callbacks (cached)" 1 (Bypass.callbacks_made bp);
  checki "one cache entry" 1 (Bypass.cache_size bp)

let test_bypass_revocation_respected () =
  (* fig 5.8: if a credential changes, the bottom custode learns by event
     notification and stops honouring the bypassed certificate. *)
  let w = make_world () in
  let bottom, top, top_cert, file = build_stack w ~depth:2 in
  let bp = Bypass.create bottom in
  Bypass.register_route bp ~top;
  let read () =
    let result = ref None in
    Bypass.read bp ~client_host:w.client_host ~cert:top_cert ~file (fun r -> result := Some r);
    run w 3.0;
    !result
  in
  checkb "works" true (read () = Some (Ok "stack data"));
  Vac.revoke_grants top;
  run w 3.0;
  checkb "revoked cert refused at bottom" true
    (match read () with Some (Error _) -> true | _ -> false)

let test_bypass_no_route () =
  let w = make_world () in
  let bottom, _top, top_cert, file = build_stack w ~depth:1 in
  let bp = Bypass.create bottom in
  let result = ref None in
  Bypass.read bp ~client_host:w.client_host ~cert:top_cert ~file (fun r -> result := Some r);
  run w 3.0;
  checkb "no route refused" true (match !result with Some (Error _) -> true | _ -> false)

let () =
  Alcotest.run "mssa"
    [
      ( "byte-segment",
        [
          Alcotest.test_case "read write" `Quick test_byte_segment_rw;
          Alcotest.test_case "isolation" `Quick test_byte_segment_isolation;
        ] );
      ( "shared-acl",
        [
          Alcotest.test_case "grant rights" `Quick test_acl_grant_rights;
          Alcotest.test_case "meta access control" `Quick test_acl_meta_access_control;
          Alcotest.test_case "placement constraint" `Quick test_acl_placement_constraint;
          Alcotest.test_case "volatile acl" `Quick test_volatile_acl_revokes_on_modify;
          Alcotest.test_case "group cascade" `Quick test_group_revocation_cascades_to_files;
          Alcotest.test_case "logout cascade" `Quick test_logout_cascades_to_files;
        ] );
      ( "files",
        [
          Alcotest.test_case "lifecycle" `Quick test_file_lifecycle;
          Alcotest.test_case "rights enforced" `Quick test_file_rights_enforced;
          Alcotest.test_case "shared acl covers many" `Quick test_shared_acl_covers_many_files;
          Alcotest.test_case "structured files" `Quick test_structured_files;
          Alcotest.test_case "container accounting" `Quick test_container_accounting;
          Alcotest.test_case "continuous media" `Quick test_continuous_media_ops;
          Alcotest.test_case "backed by segments" `Quick test_backed_custode_uses_segments;
        ] );
      ( "delegation",
        [
          Alcotest.test_case "delegate file access" `Quick test_delegate_file_access;
          Alcotest.test_case "cannot exceed rights" `Quick test_delegate_cannot_exceed_rights;
          Alcotest.test_case "dies with acl" `Quick test_delegated_cert_dies_with_acl;
        ] );
      ( "vac",
        [
          Alcotest.test_case "stack read" `Quick test_vac_stack_read;
          Alcotest.test_case "search added value" `Quick test_vac_search_added_value;
          Alcotest.test_case "rejects foreign cert" `Quick test_vac_rejects_foreign_cert;
        ] );
      ( "bypass",
        [
          Alcotest.test_case "cold and warm" `Quick test_bypass_cold_and_warm;
          Alcotest.test_case "revocation respected" `Quick test_bypass_revocation_respected;
          Alcotest.test_case "no route" `Quick test_bypass_no_route;
        ] );
    ]
