(* Deterministic chaos harness: host crash/restart, reliable RPC with
   backoff, broker crash-recovery and end-to-end revocation convergence
   under scripted fault schedules (§4.10).

   Every scenario is driven by seeded PRNGs and virtual time, so a failure
   reproduces exactly. *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Fault = Oasis_sim.Fault
module Stats = Oasis_sim.Stats
module Trace = Oasis_sim.Trace
module Prng = Oasis_util.Prng
module Event = Oasis_events.Event
module Broker = Oasis_events.Broker
module Disk = Oasis_store.Disk
module Service = Oasis_core.Service
module Group = Oasis_core.Group
module Principal = Oasis_core.Principal
module V = Oasis_rdl.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- the fault plane itself --- *)

let test_fault_script () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let f = Fault.create engine stats in
  Fault.script f [ (1.0, Fault.Crash 0); (2.0, Fault.Restart 0); (1.5, Fault.Link_down (0, 1)) ];
  let up_at = ref [] in
  List.iter
    (fun t -> Engine.schedule_at engine ~at:t (fun () -> up_at := (t, Fault.up f 0) :: !up_at))
    [ 0.5; 1.25; 2.5 ];
  Engine.schedule_at engine ~at:1.75 (fun () ->
      checkb "link down while scripted" false (Fault.link_ok f 0 1));
  Engine.run engine;
  checkb "up before crash" true (List.assoc 0.5 !up_at);
  checkb "down between crash and restart" false (List.assoc 1.25 !up_at);
  checkb "up after restart" true (List.assoc 2.5 !up_at);
  checki "one crash counted" 1 (Stats.count stats "fault.crash");
  checki "one restart counted" 1 (Stats.count stats "fault.restart")

let test_fault_chaos_heals_and_repeats () =
  let run_once () =
    let engine = Engine.create () in
    let stats = Stats.create () in
    let f = Fault.create ~seed:99L engine stats in
    Fault.chaos f ~hosts:[ 0; 1; 2 ] ~mtbf:3.0 ~mttr:0.5 ~until:20.0;
    Engine.run ~until:25.0 engine;
    checkb "all hosts healed by the deadline" true (List.for_all (Fault.up f) [ 0; 1; 2 ]);
    (Stats.count stats "fault.crash", Stats.count stats "fault.restart")
  in
  let c1, r1 = run_once () in
  let c2, r2 = run_once () in
  checkb "chaos actually crashed something" true (c1 >= 1);
  checki "every crash restarted" c1 r1;
  checkb "same seed, same schedule" true (c1 = c2 && r1 = r2)

let test_send_to_dead_host_accounted () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) engine in
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  Net.crash_host net b;
  let got = ref false in
  Net.send net ~category:"probe" ~src:a ~dst:b (fun () -> got := true);
  Engine.run ~until:1.0 engine;
  checkb "not delivered" false !got;
  checki "accounted as dead" 1 (Stats.count (Net.stats net) "probe.dead");
  Net.restart_host net b;
  Net.send net ~category:"probe" ~src:a ~dst:b (fun () -> got := true);
  Engine.run ~until:2.0 engine;
  checkb "delivered after restart" true !got

(* --- reliable RPC --- *)

let test_rpc_retry_recovers () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) engine in
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  Net.crash_host net b;
  Engine.schedule_at engine ~at:3.0 (fun () -> Net.restart_host net b);
  let result = ref None in
  Net.rpc_retry net ~category:"r" ~src:a ~dst:b (fun () -> Ok "pong") (fun r -> result := Some r);
  Engine.run ~until:20.0 engine;
  checkb "eventually succeeds" true (!result = Some (Ok "pong"));
  let st = Net.stats net in
  checkb "took more than one attempt" true (Stats.count st "r.attempt" > 1);
  checki "no giveup" 0 (Stats.count st "r.giveup")

let test_rpc_retry_gives_up () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) engine in
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  Net.crash_host net b;
  let result = ref None in
  Net.rpc_retry net ~category:"r" ~src:a ~dst:b (fun () -> Ok ()) (fun r -> result := Some r);
  Engine.run ~until:60.0 engine;
  checkb "error surfaced" true (!result = Some (Error "timeout"));
  let st = Net.stats net in
  checki "all attempts used" 5 (Stats.count st "r.attempt");
  checki "one giveup" 1 (Stats.count st "r.giveup")

let test_rpc_no_retry_on_application_error () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) engine in
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  let result = ref None in
  Net.rpc_retry net ~category:"r" ~src:a ~dst:b
    (fun () -> Error "denied")
    (fun r -> result := Some r);
  Engine.run ~until:10.0 engine;
  checkb "application error passes through" true (!result = Some (Error "denied"));
  checki "single attempt" 1 (Stats.count (Net.stats net) "r.attempt")

let test_rpc_late_reply_counted () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) engine in
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  (* Slow reply leg only: the request arrives, the reply outlives the
     timeout.  The caller sees a timeout; the reply is discarded and
     counted, not delivered twice. *)
  Net.set_link_latency net b a (Net.Fixed 3.0);
  let results = ref [] in
  Net.rpc net ~category:"r" ~timeout:2.0 ~src:a ~dst:b
    (fun () -> Ok ())
    (fun r -> results := r :: !results);
  Engine.run ~until:10.0 engine;
  checkb "timeout surfaced once" true (!results = [ Error "timeout" ]);
  checki "late reply counted" 1 (Stats.count (Net.stats net) "r.late_reply")

(* --- broker under faults --- *)

type bworld = {
  engine : Engine.t;
  net : Net.t;
  server_host : Net.host;
  client_host : Net.host;
  server : Broker.server;
}

let make_bworld ?seed ?(heartbeat = 0.3) () =
  let engine = Engine.create () in
  let net = Net.create ?seed ~latency:(Net.Fixed 0.01) engine in
  let server_host = Net.add_host net "server" in
  let client_host = Net.add_host net "client" in
  let server = Broker.create_server net server_host ~name:"svc" ~heartbeat () in
  { engine; net; server_host; client_host; server }

let connect_now w =
  let session = ref None in
  Broker.connect w.net w.client_host w.server
    ~on_result:(function Ok s -> session := Some s | Error e -> Alcotest.failf "connect: %s" e)
    ();
  Engine.run ~until:(Engine.now w.engine +. 1.0) w.engine;
  match !session with Some s -> s | None -> Alcotest.fail "no session"

let run_for w dt = Engine.run ~until:(Engine.now w.engine +. dt) w.engine

let seqs_exactly_once_in_order n seqs =
  let seqs = List.rev seqs in
  List.length seqs = n && seqs = List.sort_uniq compare seqs

let test_broker_server_crash_recovery () =
  let w = make_bworld () in
  let s = connect_now w in
  let got = ref [] in
  let _ = Broker.register s (Event.template "E" [ Event.Any ]) (fun e -> got := e.Event.seq :: !got) in
  run_for w 0.5;
  (* Five events delivered live... *)
  for i = 0 to 4 do
    ignore (Broker.signal w.server "E" [ V.Int i ]);
    run_for w 0.1
  done;
  run_for w 0.5;
  checki "live deliveries" 5 (List.length !got);
  (* ...then the server host dies, taking its volatile sessions with it. *)
  Net.crash_host w.net w.server_host;
  run_for w 1.0;
  Net.restart_host w.net w.server_host;
  (* Signalled after restart but (possibly) before the client has
     reconnected: only the retained log holds these. *)
  for i = 5 to 9 do
    ignore (Broker.signal w.server "E" [ V.Int i ]);
    run_for w 0.1
  done;
  run_for w 10.0;
  checkb "zero lost, exactly once, in order" true (seqs_exactly_once_in_order 10 !got);
  checkb "client reconnected" true (Broker.sessions w.server >= 1)

let crash_loss_scenario seed =
  let w = make_bworld ~seed ~heartbeat:0.3 () in
  let s = connect_now w in
  let got = ref [] in
  let _ = Broker.register s (Event.template "E" [ Event.Any ]) (fun e -> got := e.Event.seq :: !got) in
  (* Fault schedule: a lossy window while events are being signalled, then
     a server crash/restart shortly after. *)
  Engine.schedule_at w.engine ~at:1.5 (fun () -> Net.set_loss w.net 0.3);
  Engine.schedule_at w.engine ~at:4.0 (fun () -> Net.set_loss w.net 0.0);
  Fault.script (Net.fault w.net)
    [ (5.0, Fault.Crash (Net.host_addr w.server_host));
      (6.0, Fault.Restart (Net.host_addr w.server_host)) ];
  for i = 0 to 29 do
    Engine.schedule_at w.engine ~at:(1.5 +. (0.1 *. float_of_int i)) (fun () ->
        ignore (Broker.signal w.server "E" [ V.Int i ]))
  done;
  Engine.run ~until:40.0 w.engine;
  checkb "30 events exactly once in order" true (seqs_exactly_once_in_order 30 !got);
  Stats.report (Net.stats w.net)

let test_broker_exactly_once_under_loss_and_crash () =
  (* Several seeds must all converge... *)
  let r7 = crash_loss_scenario 7L in
  ignore (crash_loss_scenario 8L);
  ignore (crash_loss_scenario 9L);
  (* ...and the whole run — every counter of every category — must be
     bit-identical when replayed with the same seed. *)
  let r7' = crash_loss_scenario 7L in
  checkb "same seed replays identically" true (r7 = r7')

let test_broker_nack_resend_and_ack_pruning () =
  let w = make_bworld ~heartbeat:0.5 () in
  let s = connect_now w in
  (* t=1.0 now; heartbeats fire at 0.5, 1.0, 1.5, ... *)
  let got = ref [] in
  let _ = Broker.register s (Event.template "E" [ Event.Any ]) (fun e -> got := e.Event.seq :: !got) in
  run_for w 0.5;
  (* Delay both legs so that: delivery 0 is severely delayed, delivery 1
     arrives first (a gap), the heartbeat at t=2.0 beats the nacked resend
     to the client (stashing its horizon against the open gap), and the
     resend then fills the gap and releases the stashed horizon. *)
  Engine.schedule_at w.engine ~at:1.55 (fun () ->
      Net.set_link_latency w.net w.server_host w.client_host (Net.Fixed 1.0);
      Net.set_link_latency w.net w.client_host w.server_host (Net.Fixed 0.5));
  Engine.schedule_at w.engine ~at:1.6 (fun () -> ignore (Broker.signal w.server "E" [ V.Int 0 ]));
  Engine.schedule_at w.engine ~at:1.7 (fun () ->
      Net.set_link_latency w.net w.server_host w.client_host (Net.Fixed 0.01));
  Engine.schedule_at w.engine ~at:1.8 (fun () -> ignore (Broker.signal w.server "E" [ V.Int 1 ]));
  Engine.schedule_at w.engine ~at:2.1 (fun () ->
      Net.set_link_latency w.net w.client_host w.server_host (Net.Fixed 0.01));
  Engine.run ~until:2.4 w.engine;
  (* The resend triggered by the client's nack filled the gap; the
     heartbeat horizon (~2.0) stashed while the gap was open must now have
     been released, even though the last delivery carried only ~1.8. *)
  checkb "gap filled by resend" true (seqs_exactly_once_in_order 2 !got);
  checkb "stashed heartbeat horizon released" true (Broker.horizon s >= 1.99);
  (* The duplicate of delivery 0 (the slow original) lands at ~2.6 and
     must be suppressed; acks then prune the server's resend buffer. *)
  Engine.run ~until:8.0 w.engine;
  checkb "duplicate suppressed" true (seqs_exactly_once_in_order 2 !got);
  checki "resend buffer pruned by acks" 0 (Broker.server_buffered w.server)

let test_broker_timers_drain () =
  let w = make_bworld ~heartbeat:0.5 () in
  let s = connect_now w in
  let _ = Broker.register s (Event.template "E" [ Event.Any ]) (fun _ -> ()) in
  run_for w 2.0;
  ignore (Broker.signal w.server "E" [ V.Int 0 ]);
  run_for w 2.0;
  Broker.close s;
  Broker.shutdown_server w.server;
  (* Cancelled periodic timers must not re-arm: once in-flight one-shots
     (rpc timeouts etc.) expire, the queue drains to empty. *)
  run_for w 30.0;
  checki "no leaked timers" 0 (Engine.pending w.engine)

(* --- end-to-end: revocation convergence across a service crash --- *)

let login_rolefile = {|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
|}

type sworld = {
  s_engine : Engine.t;
  s_net : Net.t;
  s_client_host : Net.host;
}

let fresh_vci =
  let host = Principal.Host.create "faultclienthost" in
  let domain = Principal.Host.boot_domain host in
  fun () -> Principal.Host.new_vci host domain

let srun w dt = Engine.run ~until:(Engine.now w.s_engine +. dt) w.s_engine

let conference_world ~seed =
  let engine = Engine.create () in
  let net = Net.create ~seed ~latency:(Net.Fixed 0.005) engine in
  let reg = Service.create_registry () in
  let client_host = Net.add_host net "client" in
  let mk name rolefile =
    let host = Net.add_host net ("h." ^ name) in
    match Service.create net host reg ~name ~rolefile () with
    | Ok s -> s
    | Error e -> Alcotest.failf "service %s: %s" name e
  in
  let login = mk "Login" login_rolefile in
  let conf =
    mk "Conf"
      {|
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
|}
  in
  ({ s_engine = engine; s_net = net; s_client_host = client_host }, login, conf)

let entry_ok w svc ~client ~role ?creds ?delegation () =
  let result = ref None in
  Service.request_entry svc ~client_host:w.s_client_host ~client ~role ?creds ?delegation
    (fun r -> result := Some r);
  srun w 2.0;
  match !result with
  | Some (Ok c) -> c
  | Some (Error e) -> Alcotest.failf "entry to %s failed: %s" role e
  | None -> Alcotest.fail "entry did not complete"

let delegate w svc ~delegator ~using ~role ~required () =
  let result = ref None in
  Service.request_delegation svc ~client_host:w.s_client_host ~delegator ~using ~role ~required
    (fun r -> result := Some r);
  srun w 2.0;
  match !result with
  | Some (Ok dr) -> dr
  | Some (Error e) -> Alcotest.failf "delegation failed: %s" e
  | None -> Alcotest.fail "delegation did not complete"

(* The paper's §4.10 bound, under a crash: a revocation that happens while
   the issuing service's host is down must reach dependent services within
   a few heartbeat periods of the host coming back.  Returns the
   convergence delay after the heal. *)
let revocation_convergence ~seed =
  let w, login, conf = conference_world ~seed in
  Group.add (Service.group conf "staff") (V.Str "dm");
  let jmb = fresh_vci () in
  let jmb_cert =
    Service.issue_arbitrary login ~client:jmb ~roles:[ "LoggedOn" ]
      ~args:[ V.Str "jmb"; V.Str "ely" ]
  in
  let chair = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let dm = fresh_vci () in
  let dm_cert =
    Service.issue_arbitrary login ~client:dm ~roles:[ "LoggedOn" ]
      ~args:[ V.Str "dm"; V.Str "ely" ]
  in
  let d, _ =
    delegate w conf ~delegator:jmb ~using:chair ~role:"Member"
      ~required:[ ("Login", "LoggedOn", [ V.Str "dm"; V.Str "*" ]) ] ()
  in
  let member = entry_ok w conf ~client:dm ~role:"Member" ~creds:[ dm_cert ] ~delegation:d () in
  srun w 3.0;
  checkb "valid before the fault" true (Service.validate conf ~client:dm member = Ok ());
  (* Login's host dies; dm is logged off while it is down.  The Modified
     event is retained on Login's stable log but every delivery is dropped
     on the floor. *)
  Net.crash_host w.s_net (Service.host login);
  srun w 1.0;
  Service.revoke_certificate login dm_cert;
  srun w 2.0;
  checkb "not validated as ok while issuer down" true
    (Service.validate conf ~client:dm member <> Ok ());
  Net.restart_host w.s_net (Service.host login);
  let healed = Engine.now w.s_engine in
  let heartbeat = 1.0 (* Service.create default *) in
  let deadline = healed +. (3.0 *. heartbeat) in
  let rec poll () =
    if Service.validate conf ~client:dm member = Error Service.Revoked then
      Some (Engine.now w.s_engine -. healed)
    else if Engine.now w.s_engine >= deadline then None
    else begin
      srun w 0.05;
      poll ()
    end
  in
  match poll () with
  | None -> Alcotest.failf "no convergence within 3 heartbeats (seed %Ld)" seed
  | Some dt -> dt

let test_revocation_converges_after_crash () =
  let d1 = revocation_convergence ~seed:11L in
  let d2 = revocation_convergence ~seed:23L in
  checkb "bounded for seed 11" true (d1 <= 3.0);
  checkb "bounded for seed 23" true (d2 <= 3.0);
  (* Replaying a seed gives the same convergence time to the tick. *)
  let d1' = revocation_convergence ~seed:11L in
  checkb "deterministic replay" true (Float.equal d1 d1')

(* With batched (heartbeat-coalesced) notifications — the default — and a
   chaos schedule tormenting the issuing service's host, a revocation fired
   mid-chaos must still reach dependents within 3 heartbeat periods of the
   final heal.  Batching may not weaken §4.10's convergence bound. *)
let member_of_conf w login conf =
  Group.add (Service.group conf "staff") (V.Str "dm");
  let jmb = fresh_vci () in
  let jmb_cert =
    Service.issue_arbitrary login ~client:jmb ~roles:[ "LoggedOn" ]
      ~args:[ V.Str "jmb"; V.Str "ely" ]
  in
  let chair = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let dm = fresh_vci () in
  let dm_cert =
    Service.issue_arbitrary login ~client:dm ~roles:[ "LoggedOn" ]
      ~args:[ V.Str "dm"; V.Str "ely" ]
  in
  let d, _ =
    delegate w conf ~delegator:jmb ~using:chair ~role:"Member"
      ~required:[ ("Login", "LoggedOn", [ V.Str "dm"; V.Str "*" ]) ] ()
  in
  let member = entry_ok w conf ~client:dm ~role:"Member" ~creds:[ dm_cert ] ~delegation:d () in
  (dm, dm_cert, member)

let batched_chaos_convergence ~seed =
  let w, login, conf = conference_world ~seed:(Int64.add 1000L seed) in
  let dm, dm_cert, member = member_of_conf w login conf in
  srun w 2.0;
  checkb "valid before the chaos" true (Service.validate conf ~client:dm member = Ok ());
  let f = Net.fault w.s_net in
  let addr = Net.host_addr (Service.host login) in
  Fault.chaos f ~hosts:[ addr ] ~mtbf:3.0 ~mttr:1.0 ~until:(Engine.now w.s_engine +. 15.0);
  srun w 6.0;
  (* Logoff in the middle of the chaos window, issuer up or not. *)
  Service.revoke_certificate login dm_cert;
  srun w 9.0;
  (* Chaos stops injecting; wait for the final heal. *)
  let rec await_heal budget =
    if Fault.up f addr then Engine.now w.s_engine
    else if budget <= 0.0 then Alcotest.fail "chaos never healed"
    else begin
      srun w 0.05;
      await_heal (budget -. 0.05)
    end
  in
  let healed = await_heal 5.0 in
  checkb "chaos actually crashed the issuer" true
    (Stats.count (Net.stats w.s_net) "fault.crash" >= 1);
  let deadline = healed +. 3.0 in
  let rec poll () =
    if Service.validate conf ~client:dm member = Error Service.Revoked then
      Engine.now w.s_engine -. healed
    else if Engine.now w.s_engine >= deadline then
      Alcotest.failf "no convergence within 3 heartbeats of heal (seed %Ld)" seed
    else begin
      srun w 0.05;
      poll ()
    end
  in
  poll ()

let test_batched_chaos_convergence () =
  let d1 = batched_chaos_convergence ~seed:3L in
  let d2 = batched_chaos_convergence ~seed:8L in
  checkb "bounded for seed 3" true (d1 <= 3.0);
  checkb "bounded for seed 8" true (d2 <= 3.0);
  let d1' = batched_chaos_convergence ~seed:3L in
  checkb "deterministic replay" true (Float.equal d1 d1')

(* Tracing under chaos: the revocation pipeline's causal spans must survive
   the crash schedule — the batching, the broker's retained-log replay and
   the reread retries may delay propagation, but every span must still
   close, and the peer-side completion (digest apply or reread) must land
   within the same 3-heartbeat bound the convergence tests assert. *)
let test_chaos_revocation_spans_complete () =
  let w, login, conf = conference_world ~seed:1003L in
  let dm, dm_cert, member = member_of_conf w login conf in
  srun w 2.0;
  checkb "valid before the chaos" true (Service.validate conf ~client:dm member = Ok ());
  let f = Net.fault w.s_net in
  let addr = Net.host_addr (Service.host login) in
  Fault.chaos f ~hosts:[ addr ] ~mtbf:3.0 ~mttr:1.0 ~until:(Engine.now w.s_engine +. 15.0);
  srun w 6.0;
  let tr = Net.trace w.s_net in
  Trace.set_enabled tr true;
  Trace.clear tr;
  Service.revoke_certificate login dm_cert;
  srun w 9.0;
  let rec await_heal budget =
    if Fault.up f addr then Engine.now w.s_engine
    else if budget <= 0.0 then Alcotest.fail "chaos never healed"
    else begin
      srun w 0.05;
      await_heal (budget -. 0.05)
    end
  in
  let healed = await_heal 5.0 in
  let deadline = healed +. 3.0 in
  let rec poll () =
    if Service.validate conf ~client:dm member = Error Service.Revoked then ()
    else if Engine.now w.s_engine >= deadline then
      Alcotest.fail "no convergence within 3 heartbeats of heal"
    else begin
      srun w 0.05;
      poll ()
    end
  in
  poll ();
  let spans = Trace.spans tr in
  let finished_by t name =
    List.exists (fun sp -> Trace.span_name sp = name && Trace.span_end sp <= t) spans
  in
  checkb "invalidation span recorded" true (finished_by deadline "revoke.invalidate");
  checkb "peer-side completion within 3 heartbeats of heal" true
    (finished_by deadline "revoke.apply" || finished_by deadline "revoke.reread");
  (* Give any straggling reread retries their full budget, then demand that
     no revocation span is left open: a leak here means an instrumented
     code path lost its finish under the fault schedule. *)
  srun w 25.0;
  let is_revocation sp =
    let n = Trace.span_name sp in
    String.length n >= 7 && String.sub n 0 7 = "revoke."
  in
  checkb "no revocation span left open" true
    (not (List.exists is_revocation (Trace.open_spans tr)));
  Trace.set_enabled tr false

(* The batched staleness reread is a single rpc_retry carrying every pending
   key.  If the issuer dies again mid-batch, the RPC must exhaust its budget
   (accounted under oasis.reread.giveup) and the whole batch must be retried
   idempotently once the issuer is really back — converging to the same
   answer as if the first reread had succeeded. *)
let test_reread_gives_up_and_retries_batch () =
  let w, login, conf = conference_world ~seed:77L in
  let dm, dm_cert, member = member_of_conf w login conf in
  srun w 2.0;
  let stats = Net.stats w.s_net in
  Net.crash_host w.s_net (Service.host login);
  srun w 1.0;
  Service.revoke_certificate login dm_cert;
  srun w 2.0;
  checkb "unknown while issuer down" true
    (Service.validate conf ~client:dm member = Error Service.Unknown_state);
  (* Heal, then kill the issuer again the moment the batched reread has been
     sent but before its reply can land (2 x 5 ms latency): the in-flight
     exchange is dropped and every retry hits a dead host. *)
  let attempts0 = Stats.count stats "oasis.reread.attempt" in
  Net.restart_host w.s_net (Service.host login);
  let rec await_attempt budget =
    if Stats.count stats "oasis.reread.attempt" > attempts0 then ()
    else if budget <= 0.0 then Alcotest.fail "recovery never issued a reread"
    else begin
      srun w 0.002;
      await_attempt (budget -. 0.002)
    end
  in
  await_attempt 15.0;
  Net.crash_host w.s_net (Service.host login);
  (* Worst-case budget: 5 x 2 s timeouts plus jittered backoff < 16 s. *)
  srun w 16.0;
  checkb "mid-batch reread exhausted its retry budget" true
    (Stats.count stats "oasis.reread.giveup" >= 1);
  Net.restart_host w.s_net (Service.host login);
  srun w 8.0;
  checkb "batch retried idempotently after the real heal" true
    (Service.validate conf ~client:dm member = Error Service.Revoked)

(* --- durable state under crash interleavings ---

   A durable (disk-backed) service tormented by a seeded crash landing at a
   random point of the post-revocation-burst pipeline must, within 3
   heartbeats of the restart, present exactly the memberships a crash-free
   twin presents: fired principals revoked, everyone else valid.  And the
   whole recovered run must replay bit-identically from its seed. *)

let durable_meet_rolefile =
  {|
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* |>* Chair : u in staff
|}

let durable_burst_scenario ~crash seed =
  let engine = Engine.create () in
  let net = Net.create ~seed ~latency:(Net.Fixed 0.005) engine in
  let reg = Service.create_registry () in
  let client_host = Net.add_host net "client" in
  let login_host = Net.add_host net "h.login" in
  let meet_host = Net.add_host net "h.meet" in
  let disk = Disk.create net meet_host () in
  let login =
    match Service.create net login_host reg ~name:"Login" ~rolefile:login_rolefile () with
    | Ok s -> s
    | Error e -> Alcotest.failf "login: %s" e
  in
  let meet =
    match
      Service.create net meet_host reg ~name:"Meet" ~rolefile:durable_meet_rolefile ~disk
        ~snapshot_every:6 ()
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "meet: %s" e
  in
  let w = { s_engine = engine; s_net = net; s_client_host = client_host } in
  let users = [ "u0"; "u1"; "u2"; "u3" ] in
  List.iter (fun u -> Group.add (Service.group meet "staff") (V.Str u)) users;
  let jmb = fresh_vci () in
  let jmb_cert =
    Service.issue_arbitrary login ~client:jmb ~roles:[ "LoggedOn" ]
      ~args:[ V.Str "jmb"; V.Str "ely" ]
  in
  let chair = entry_ok w meet ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let members =
    List.map
      (fun u ->
        let vci = fresh_vci () in
        let cert =
          Service.issue_arbitrary login ~client:vci ~roles:[ "LoggedOn" ]
            ~args:[ V.Str u; V.Str "ely" ]
        in
        (u, vci, entry_ok w meet ~client:vci ~role:"Member" ~creds:[ cert ] ()))
      users
  in
  (* The revocation burst: u0 and u1 fired at seeded offsets.  The
     interleaving stream is independent of the network seed, so the same
     seed replays the same schedule. *)
  let prng = Prng.create (Int64.add 5000L seed) in
  let t0 = Engine.now engine in
  let fire_at u at =
    Engine.schedule_at engine ~at (fun () ->
        Service.revoke_role_instance meet ~client_host ~revoker:chair ~role:"Member"
          ~args:[ V.Str u ] (fun _ -> ()))
  in
  fire_at "u0" (t0 +. Prng.float prng 0.3);
  fire_at "u1" (t0 +. 0.3 +. Prng.float prng 0.3);
  (* Crash after the fires are on the platter (acks + the 50 ms group-commit
     window are over by t0+0.8) but while notification flushes, digest
     deliveries and heartbeats are still in flight. *)
  let t_crash = t0 +. 0.8 +. Prng.float prng 0.8 in
  let t_restart = t_crash +. 0.3 +. Prng.float prng 0.7 in
  if crash then
    Fault.script (Net.fault net)
      [
        (t_crash, Fault.Crash (Net.host_addr meet_host));
        (t_restart, Fault.Restart (Net.host_addr meet_host));
      ];
  (* Converged state is read 3 heartbeats after the (possible) restart. *)
  Engine.run ~until:(t_restart +. 3.0 +. 0.5) engine;
  let fingerprint =
    List.map
      (fun (u, vci, m) ->
        ( u,
          match Service.validate meet ~client:vci m with
          | Ok () -> "ok"
          | Error f -> Format.asprintf "%a" Service.pp_failure f ))
      members
  in
  (fingerprint, Stats.report (Net.stats net))

let test_durable_crash_equivalence_25_seeds () =
  let expected = [ ("u0", "revoked"); ("u1", "revoked"); ("u2", "ok"); ("u3", "ok") ] in
  for s = 1 to 25 do
    let seed = Int64.of_int s in
    let crashed, _ = durable_burst_scenario ~crash:true seed in
    let clean, _ = durable_burst_scenario ~crash:false seed in
    Alcotest.(check (list (pair string string)))
      (Printf.sprintf "seed %d: crash-free run has the expected memberships" s)
      expected clean;
    Alcotest.(check (list (pair string string)))
      (Printf.sprintf "seed %d: recovered state equals the crash-free state" s)
      clean crashed
  done;
  (* Replay identity: the full recovered run — every counter of every
     category — is bit-identical under the same seed. *)
  let r = durable_burst_scenario ~crash:true 7L in
  let r' = durable_burst_scenario ~crash:true 7L in
  checkb "same seed, same recovered run" true (r = r')

(* --- sharded chaos vs the crash-free single-node twin ---

   The sharded deployment (lib/oasis/shard.ml) under chaos faults on every
   shard host and the router must converge to exactly the memberships its
   crash-free SINGLE-NODE twin presents — the observable table may not
   betray either the partitioning or the faults.  (test/test_shard.ml
   holds sharded-vs-unsharded under the SAME weather on both sides; this
   one crosses the axes: faulty-and-sharded against calm-and-unsharded.) *)

module Shard = Oasis_core.Shard
module Cert = Oasis_core.Cert

(* Drive one routed operation to completion, retrying through the chaos
   (virtual-clock polling, so the schedule is a deterministic function of
   the seed). *)
let routed_ok w label op =
  let rec go tries last =
    if tries = 0 then Alcotest.failf "%s: retries exhausted (last: %s)" label last
    else begin
      let cell = ref None in
      op (fun r -> cell := Some r);
      let rec wait budget =
        match !cell with
        | Some (Ok v) -> v
        | Some (Error e) ->
            srun w 0.5;
            go (tries - 1) e
        | None ->
            if budget <= 0.0 then go (tries - 1) last
            else begin
              srun w 0.25;
              wait (budget -. 0.25)
            end
      in
      wait 30.0
    end
  in
  go 8 "never completed"

let sharded_burst_scenario ~chaos ~shards seed =
  let engine = Engine.create () in
  let net = Net.create ~seed ~latency:(Net.Fixed 0.005) engine in
  let reg = Service.create_registry () in
  let client_host = Net.add_host net "client" in
  let login_host = Net.add_host net "h.login" in
  let login =
    match Service.create net login_host reg ~name:"Login" ~rolefile:login_rolefile () with
    | Ok s -> s
    | Error e -> Alcotest.failf "login: %s" e
  in
  let users = [ "u0"; "u1"; "u2"; "u3" ] in
  let club =
    match
      Shard.create net reg ~name:"Meet" ~rolefile:durable_meet_rolefile ~shards ~durable:true
        ~snapshot_every:6 ~groups:[ ("staff", users) ] ()
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "shard deploy: %s" e
  in
  let w = { s_engine = engine; s_net = net; s_client_host = client_host } in
  srun w 0.2;
  let jmb = fresh_vci () in
  let jmb_cert =
    Service.issue_arbitrary login ~client:jmb ~roles:[ "LoggedOn" ]
      ~args:[ V.Str "jmb"; V.Str "ely" ]
  in
  let chair =
    routed_ok w "enter-chair" (fun k ->
        Shard.request_entry club ~client_host ~client:jmb ~role:"Chair" ~args:[]
          ~creds:[ jmb_cert ] k)
  in
  let members =
    List.map
      (fun u ->
        let vci = fresh_vci () in
        let cert =
          Service.issue_arbitrary login ~client:vci ~roles:[ "LoggedOn" ]
            ~args:[ V.Str u; V.Str "ely" ]
        in
        ( u,
          vci,
          routed_ok w ("enter-" ^ u) (fun k ->
              Shard.request_entry club ~client_host ~client:vci ~role:"Member"
                ~args:[ V.Str u ] ~creds:[ cert ] k) ))
      users
  in
  srun w 1.0;
  let f = Net.fault net in
  let hosts =
    Net.host_addr (Shard.router_host club)
    :: (Array.to_list (Shard.shards club) |> List.map (fun s -> Net.host_addr (Service.host s)))
  in
  if chaos then begin
    (* Same global fault pressure at every shard count (cf. test_shard). *)
    let mtbf = 1.5 *. float_of_int (List.length hosts) in
    Fault.chaos f ~hosts ~mtbf ~mttr:1.0 ~until:(Engine.now engine +. 6.0)
  end;
  let fire u =
    ignore
      (routed_ok w ("fire-" ^ u) (fun k ->
           Shard.revoke_role_instance club ~client_host ~revoker:chair ~role:"Member"
             ~args:[ V.Str u ] k))
  in
  fire "u0";
  fire "u1";
  srun w 6.0;
  let rec await_heal budget =
    if List.for_all (Fault.up f) hosts then ()
    else if budget <= 0.0 then Alcotest.fail "chaos never healed"
    else begin
      srun w 0.05;
      await_heal (budget -. 0.05)
    end
  in
  await_heal 5.0;
  if chaos then
    checkb "chaos actually crashed something" true
      (Stats.count (Net.stats net) "fault.crash" >= 1);
  (* The §4.10 bound: converged within 3 heartbeats of the final heal. *)
  srun w 3.0;
  let table =
    List.map
      (fun (u, vci, c) ->
        let issuer =
          Array.to_list (Shard.shards club)
          |> List.find (fun s -> String.equal (Service.name s) c.Cert.service)
        in
        ( u,
          match Service.validate issuer ~client:vci c with
          | Ok () -> "ok"
          | Error e -> Format.asprintf "%a" Service.pp_failure e ))
      members
  in
  (table, Stats.report (Net.stats net))

let test_sharded_chaos_equals_calm_single_node_25_seeds () =
  let expected = [ ("u0", "revoked"); ("u1", "revoked"); ("u2", "ok"); ("u3", "ok") ] in
  for s = 1 to 25 do
    let seed = Int64.of_int (4000 + s) in
    let stormy, _ = sharded_burst_scenario ~chaos:true ~shards:4 seed in
    let calm, _ = sharded_burst_scenario ~chaos:false ~shards:1 seed in
    Alcotest.(check (list (pair string string)))
      (Printf.sprintf "seed %d: calm single-node twin has the expected memberships" s)
      expected calm;
    Alcotest.(check (list (pair string string)))
      (Printf.sprintf "seed %d: sharded chaos state equals the calm twin" s)
      calm stormy
  done;
  (* Replay identity: every counter of every category, bit-identical. *)
  let r = sharded_burst_scenario ~chaos:true ~shards:4 4007L in
  let r' = sharded_burst_scenario ~chaos:true ~shards:4 4007L in
  checkb "same seed, same stormy sharded run" true (r = r')

let () =
  Alcotest.run "faults"
    [
      ( "fault-plane",
        [
          Alcotest.test_case "scripted crash and restart" `Quick test_fault_script;
          Alcotest.test_case "chaos heals by deadline" `Quick test_fault_chaos_heals_and_repeats;
          Alcotest.test_case "dead host drops accounted" `Quick test_send_to_dead_host_accounted;
        ] );
      ( "reliable-rpc",
        [
          Alcotest.test_case "retry recovers" `Quick test_rpc_retry_recovers;
          Alcotest.test_case "gives up after budget" `Quick test_rpc_retry_gives_up;
          Alcotest.test_case "application errors pass through" `Quick
            test_rpc_no_retry_on_application_error;
          Alcotest.test_case "late reply counted" `Quick test_rpc_late_reply_counted;
        ] );
      ( "broker-recovery",
        [
          Alcotest.test_case "server crash recovery" `Quick test_broker_server_crash_recovery;
          Alcotest.test_case "exactly once under loss and crash" `Quick
            test_broker_exactly_once_under_loss_and_crash;
          Alcotest.test_case "nack resend, ack pruning, stashed horizon" `Quick
            test_broker_nack_resend_and_ack_pruning;
          Alcotest.test_case "timers drain after shutdown" `Quick test_broker_timers_drain;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "revocation within 3 heartbeats of heal" `Quick
            test_revocation_converges_after_crash;
          Alcotest.test_case "batched notifications under chaos" `Quick
            test_batched_chaos_convergence;
          Alcotest.test_case "revocation spans complete under chaos" `Quick
            test_chaos_revocation_spans_complete;
          Alcotest.test_case "reread gives up mid-batch, batch retried" `Quick
            test_reread_gives_up_and_retries_batch;
        ] );
      ( "durable-state",
        [
          Alcotest.test_case "crash interleavings equal the crash-free run (25 seeds)" `Quick
            test_durable_crash_equivalence_25_seeds;
          Alcotest.test_case "sharded chaos equals the calm single-node twin (25 seeds)" `Slow
            test_sharded_chaos_equals_calm_single_node_25_seeds;
        ] );
    ]
