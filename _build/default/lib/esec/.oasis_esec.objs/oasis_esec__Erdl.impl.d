lib/esec/erdl.ml: Array Format List Oasis_events Oasis_rdl Option Printf Result String
