(* Sets here are tiny (roles in a rolefile, rights characters), so a single
   63-bit word suffices; [singleton] rejects out-of-range elements loudly. *)

type t = int

let max_element = 62

let empty = 0

let check i =
  if i < 0 || i > max_element then invalid_arg (Printf.sprintf "Bitset: element %d out of range" i)

let singleton i =
  check i;
  1 lsl i

let add i s =
  check i;
  s lor (1 lsl i)

let remove i s =
  check i;
  s land lnot (1 lsl i)

let mem i s = i >= 0 && i <= max_element && s land (1 lsl i) <> 0
let of_list l = List.fold_left (fun s i -> add i s) empty l

let to_list s =
  let rec go i acc = if i < 0 then acc else go (i - 1) (if mem i s then i :: acc else acc) in
  go max_element []

let union = ( lor )
let inter = ( land )
let diff a b = a land lnot b
let subset a b = a land lnot b = 0
let equal = Int.equal
let is_empty s = s = 0

let cardinal s =
  let rec go s acc = if s = 0 then acc else go (s lsr 1) (acc + (s land 1)) in
  go s 0

let compare = Int.compare
let marshal s = Printf.sprintf "%x" s

(* Strict inverse of [marshal]: bare lowercase/uppercase hex only.
   [int_of_string_opt ("0x" ^ str)] would also accept underscores ("1_0")
   and signs, and silently wrap values wider than the 63-bit word; here any
   non-hex character or any value with bits above [max_element] is rejected,
   so [unmarshal] only ever yields sets [marshal] could have produced. *)
let unmarshal str =
  let n = String.length str in
  if n = 0 || n > 16 then None
  else
    let rec go i acc =
      if i = n then Some acc
      else
        let d =
          match str.[i] with
          | '0' .. '9' as c -> Char.code c - Char.code '0'
          | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
          | _ -> -1
        in
        if d < 0 then None
          (* The next shift must not push anything past bit 62: [acc] still
             having headroom means bits 59..62 are clear. *)
        else if acc lsr 59 <> 0 then None
        else go (i + 1) ((acc lsl 4) lor d)
    in
    go 0 0

let pp ppf s =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (to_list s)))
