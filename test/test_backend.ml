(* Backend conformance: the three substrate capabilities (scheduling/clock,
   messaging, stable storage) behave identically behind Backend_sim and
   Backend_unix, so protocol modules compile and run against either with
   zero backend conditionals.  The same check matrix runs against both
   backends; Unix-only tests add the real wire (loopback TCP with the WAL
   framing) and real-file crash-tail semantics; a persisted model-checking
   schedule replays unchanged to pin the sim ordering across the engine
   refactor. *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Disk = Oasis_store.Disk
module Backend = Oasis_backend.Backend
module Backend_sim = Oasis_backend.Backend_sim
module Backend_unix = Oasis_backend.Backend_unix
module Explore = Oasis_mc.Explore
module Scenarios = Oasis_mc.Scenarios

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Each conformance case builds a fresh backend: wall-clock backends cannot
   rewind, and a drained unix run loop exits only when no sockets are
   open — which these in-process cases guarantee. *)
type flavour = Sim | Ux

let flavour_name = function Sim -> "sim" | Ux -> "unix"

let make = function
  | Sim -> (Backend_sim.create (), None)
  | Ux ->
      let b = Backend_unix.create () in
      (Backend_unix.pack b, Some b)

(* Run until [p] holds or the deadline passes.  The sim jumps virtual
   time; the unix backend waits out the real clock, so deadlines here are
   kept short. *)
let run_until_done backend ~deadline p =
  let engine = Backend.engine backend in
  let t = ref None in
  t :=
    Some
      (Engine.every engine ~period:0.005 (fun () ->
           if p () then begin
             Option.iter Engine.cancel !t;
             Engine.stop (Backend.engine backend)
           end));
  Backend.run ~until:(Engine.now engine +. deadline) backend;
  Option.iter Engine.cancel !t;
  checkb "completed before deadline" true (p ())

let test_clock_domain fl () =
  let backend, _ = make fl in
  let label = Backend.clock_domain_label backend in
  checks "label matches flavour"
    (match fl with Sim -> "sim" | Ux -> "wall")
    label;
  checkb "real_time agrees" (fl = Ux) (Engine.real_time (Backend.engine backend))

let test_send_delivery fl () =
  let backend, _ = make fl in
  let net = Backend.net backend in
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  ignore b;
  let got = ref 0 in
  Net.send net ~src:a ~dst:b (fun () -> incr got);
  Net.send net ~src:a ~dst:b (fun () -> incr got);
  run_until_done backend ~deadline:2.0 (fun () -> !got = 2)

let test_call_roundtrip fl () =
  let backend, _ = make fl in
  let net = Backend.net backend in
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  Net.bind net b ~port:"echo" (fun req reply -> reply (Ok ("echo:" ^ req)));
  let answer = ref "" in
  Net.call net ~src:a ~dst:"b" ~port:"echo" "hi" (function
    | Ok s -> answer := s
    | Error e -> answer := "error:" ^ e);
  run_until_done backend ~deadline:2.0 (fun () -> !answer <> "");
  checks "served by the bound handler" "echo:hi" !answer

let test_call_error_paths fl () =
  let backend, _ = make fl in
  let net = Backend.net backend in
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  (* A silent handler: the caller's timeout must answer. *)
  Net.bind net b ~port:"void" (fun _req _reply -> ());
  let timed_out = ref false and unknown = ref "" in
  Net.call net ~timeout:0.1 ~src:a ~dst:"b" ~port:"void" "x" (function
    | Error "timeout" -> timed_out := true
    | _ -> ());
  (match fl with
  | Sim ->
      (* No remote transport: a non-local destination answers explicitly. *)
      Net.call net ~timeout:0.1 ~src:a ~dst:"elsewhere" ~port:"p" "x" (function
        | Error e -> unknown := e
        | Ok _ -> ())
  | Ux ->
      (* A transport is installed but has no peer for the name: the frame
         is dropped and the timeout answers, like a dead remote. *)
      Net.call net ~timeout:0.1 ~src:a ~dst:"elsewhere" ~port:"p" "x" (function
        | Error "timeout" -> unknown := "unknown host: elsewhere"
        | _ -> ()));
  run_until_done backend ~deadline:3.0 (fun () -> !timed_out && !unknown <> "");
  checks "unreachable destination fails closed" "unknown host: elsewhere" !unknown

let test_timer_cancel fl () =
  let backend, _ = make fl in
  let engine = Backend.engine backend in
  let fired = ref 0 and cancelled_fired = ref false in
  let t = Engine.timer engine ~delay:0.02 (fun () -> cancelled_fired := true) in
  Engine.cancel t;
  ignore (Engine.timer engine ~delay:0.03 (fun () -> incr fired));
  run_until_done backend ~deadline:2.0 (fun () -> !fired = 1);
  checkb "cancelled timer never fires" false !cancelled_fired

let test_every_cancel fl () =
  let backend, _ = make fl in
  let engine = Backend.engine backend in
  let ticks = ref 0 in
  let t = ref None in
  t :=
    Some
      (Engine.every engine ~period:0.01 (fun () ->
           incr ticks;
           if !ticks = 3 then Option.iter Engine.cancel !t));
  run_until_done backend ~deadline:2.0 (fun () -> !ticks >= 3);
  (* Let any leaked period elapse, then confirm the series stopped. *)
  let engine = Backend.engine backend in
  let settled = ref false in
  ignore (Engine.timer engine ~delay:0.05 (fun () -> settled := true));
  run_until_done backend ~deadline:2.0 (fun () -> !settled);
  checki "cancelled series stops at 3" 3 !ticks

(* The Disk crash contract, same on both substrates: synced bytes survive,
   the unsynced tail does not outlive the device (the sim may keep a torn
   seeded prefix of it; the real device loses buffered bytes wholesale). *)
let test_fsync_crash_tail fl () =
  let backend, ub = make fl in
  let net = Backend.net backend in
  let h = Net.add_host net "h" in
  let disk = Backend.disk backend h in
  let synced = ref false in
  Disk.append disk ~file:"log" "durable-prefix";
  Disk.fsync disk ~file:"log" (fun () -> synced := true);
  run_until_done backend ~deadline:2.0 (fun () -> !synced);
  Disk.append disk ~file:"log" "+unsynced-tail";
  checki "tail buffered, not durable" (String.length "durable-prefix")
    (Disk.durable_size disk ~file:"log");
  let disk' =
    match (fl, ub) with
    | Ux, Some b -> Backend_unix.reopen_disk b h
    | _ ->
        Net.crash_host net h;
        Net.restart_host net h;
        disk
  in
  let contents = Disk.read disk' ~file:"log" in
  let plen = String.length "durable-prefix" in
  checkb "synced prefix survives the crash"
    true
    (String.length contents >= plen && String.sub contents 0 plen = "durable-prefix");
  checkb "lost tail is a prefix of what was appended" true
    (String.length contents <= String.length "durable-prefix+unsynced-tail");
  (match fl with
  | Ux -> checki "real device loses the whole unsynced tail" plen (String.length contents)
  | Sim -> ());
  checki "fresh device has no unsynced bytes" 0 (Disk.unsynced disk' ~file:"log")

let conformance fl =
  [
    Alcotest.test_case (flavour_name fl ^ ": clock domain") `Quick (test_clock_domain fl);
    Alcotest.test_case (flavour_name fl ^ ": send delivers") `Quick (test_send_delivery fl);
    Alcotest.test_case (flavour_name fl ^ ": call round-trips") `Quick (test_call_roundtrip fl);
    Alcotest.test_case
      (flavour_name fl ^ ": call timeout / unreachable")
      `Quick (test_call_error_paths fl);
    Alcotest.test_case (flavour_name fl ^ ": timer cancel") `Quick (test_timer_cancel fl);
    Alcotest.test_case (flavour_name fl ^ ": every cancel") `Quick (test_every_cancel fl);
    Alcotest.test_case
      (flavour_name fl ^ ": fsync crash-tail contract")
      `Quick (test_fsync_crash_tail fl);
  ]

(* --- the real wire: loopback TCP with the WAL's length+SipHash framing --- *)

let test_unix_loopback_call () =
  (* One process, one select loop — but the call crosses a real socket:
     the wire name is not a local host, so the frame goes out through the
     loopback listener and is dispatched back in via the alias, exactly
     the path a remote process takes. *)
  let b = Backend_unix.create () in
  let backend = Backend_unix.pack b in
  let net = Backend.net backend in
  let a = Net.add_host net "a" and srv = Net.add_host net "srv" in
  ignore srv;
  Net.bind net srv ~port:"sum" (fun req reply ->
      reply (Ok (string_of_int (String.length req))));
  let port = Backend_unix.listen b () in
  Backend_unix.peer b ~name:"wire.srv" ~port;
  Backend_unix.alias b ~name:"wire.srv" ~local:"srv";
  let answer = ref "" in
  Net.call net ~src:a ~dst:"wire.srv" ~port:"sum" "12345" (function
    | Ok s -> answer := s
    | Error e -> answer := "error:" ^ e);
  run_until_done backend ~deadline:5.0 (fun () -> !answer <> "");
  Backend_unix.shutdown b;
  checks "request crossed the socket and back" "5" !answer

let test_unix_wal_roundtrip () =
  let module Wal = Oasis_store.Wal in
  let b = Backend_unix.create () in
  let backend = Backend_unix.pack b in
  let net = Backend.net backend in
  let h = Net.add_host net "h" in
  let disk = Backend.disk backend h in
  let wal = Wal.create disk ~file:"wal" () in
  let records = List.init 20 (fun i -> Printf.sprintf "rec-%d" i) in
  List.iter (fun r -> Wal.append wal r) records;
  Wal.flush wal;
  let flushed = ref false in
  Wal.append wal ~on_durable:(fun () -> flushed := true) "last";
  Wal.flush wal;
  run_until_done backend ~deadline:5.0 (fun () -> !flushed);
  (* Recover through a fresh device over the same directory: the checksum
     framing must decode every synced record from the real file. *)
  let disk' = Backend_unix.reopen_disk b h in
  let wal' = Wal.create disk' ~file:"wal" () in
  Alcotest.(check (list string)) "recovered = appended" (records @ [ "last" ]) (Wal.recover wal')

(* --- sim ordering regression: the engine refactor is invisible --- *)

let test_sim_schedule_replays_unchanged () =
  let path =
    if Sys.file_exists "schedules" then "schedules/golf_club_ack_durable.json"
    else "test/schedules/golf_club_ack_durable.json"
  in
  match Explore.load_schedule path with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok sf -> (
      match Scenarios.find sf.Explore.sf_scenario with
      | None -> Alcotest.failf "unknown scenario %s" sf.Explore.sf_scenario
      | Some spec ->
          let r = Explore.replay spec sf in
          checki "persisted schedule still replays clean" 0 (List.length r.Explore.r_violations))

let () =
  Alcotest.run "backend"
    [
      ("conformance-sim", conformance Sim);
      ("conformance-unix", conformance Ux);
      ( "unix-wire",
        [
          Alcotest.test_case "loopback socket call" `Quick test_unix_loopback_call;
          Alcotest.test_case "WAL round-trips on a real disk" `Quick test_unix_wal_roundtrip;
        ] );
      ( "sim-ordering",
        [
          Alcotest.test_case "persisted MC schedule replays unchanged" `Quick
            test_sim_schedule_replays_unchanged;
        ] );
    ]
