(** Common MSSA types (§5.2).

    Every file is named by a machine-oriented unique identifier that can be
    examined to locate the custode responsible for it. *)

type file_ref = { fr_custode : string; fr_id : int }

let pp_file_ref ppf r = Format.fprintf ppf "%s#%d" r.fr_custode r.fr_id
let file_ref_to_string r = Format.asprintf "%a" pp_file_ref r

let file_ref_of_string s =
  match String.index_opt s '#' with
  | None -> None
  | Some i -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some id -> Some { fr_custode = String.sub s 0 i; fr_id = id }
      | None -> None)

(** Rights universe for storage objects: read, write, execute, delete,
    administer. *)
let full_rights = "adrwx"

(** File kinds stored by the different custodes (§5.2): flat data,
    structured (compound documents with embedded references), continuous
    media (modelled as flat data with play/record rights), and ACL files
    themselves (§5.4.1). *)
type kind = Flat | Structured | Continuous | Acl_file

let kind_to_string = function
  | Flat -> "flat"
  | Structured -> "structured"
  | Continuous -> "continuous"
  | Acl_file -> "acl"
