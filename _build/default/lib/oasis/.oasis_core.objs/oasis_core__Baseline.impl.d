lib/oasis/baseline.ml: Hashtbl List Oasis_rdl Oasis_sim Oasis_util Printf String
