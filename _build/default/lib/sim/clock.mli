(** Per-host clocks with drift and offset.

    §6.8.4: clocks in different machines are only approximately synchronised;
    event timestamps are taken from the generating host's clock, so composite
    event ordering must tolerate drift. *)

type t

val create : ?rate:float -> ?offset:float -> Engine.t -> t
(** [rate] is the ratio of this clock to true (engine) time, default 1.0;
    [offset] is added to the scaled time, default 0.0. *)

val read : t -> float
(** The host's local timestamp for the current instant. *)

val true_time : t -> float
(** The engine's (omniscient) time; not available to protocol code, used only
    by the harness for measurement. *)

val set_rate : t -> float -> unit
val set_offset : t -> float -> unit
