(** Tokeniser for RDL source text. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | SETLIT of string  (** [{rwx}] — raw (unsorted) element characters *)
  | OBJLIT of string * string  (** [@typename"identifier"] *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | COLON
  | STAR
  | ARROW  (** [<-] *)
  | WEDGE  (** [/\] or [&&] *)
  | ELECT  (** [<|], the paper's ◁ *)
  | REVOKE  (** [|>], the paper's ▷ *)
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | KW_IMPORT
  | KW_DEF
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_IN
  | KW_SUBSET
  | EOF

exception Lex_error of string * int  (** message, line *)

val tokenize : string -> (token * int) list
(** Token stream with line numbers.  Comments run from [--] or [#] to end of
    line.  Raises {!Lex_error} on malformed input. *)

val pp_token : Format.formatter -> token -> unit
