(** Witness → scenario compiler: executable evidence for the symbolic
    escalation prover.

    [Oasis_core.Federation_lint] proves escalation chains symbolically; this
    module compiles each {!Oasis_core.Federation_lint.witness} into a
    declarative {!Scenario.t} — issue the holder (and the chain's
    independent obligations) via the §4.12 bootstrap, walk the chain hop by
    hop through the real role-entry engine (including §4.4 elections for
    hops with elector obligations), assert the target validates, then fire
    the holder and assert the OASIS006 verdict dynamically: a carried chain
    must see the target revoked, a revocation-blind chain must see it
    survive.  Run under {!Explore.explore}, every statically reported path
    becomes replayable evidence, and a static/dynamic disagreement is a bug
    by definition. *)

module FL = Oasis_core.Federation_lint
module Service = Oasis_core.Service
module Group = Oasis_core.Group
module Ast = Oasis_rdl.Ast
module Analyze = Oasis_rdl.Analyze
module Pretty = Oasis_rdl.Pretty
module Ty = Oasis_rdl.Ty
module V = Oasis_rdl.Value

let walker = "mallory"

exception Not_compilable of string

let key (svc, role) = svc ^ "." ^ role

(* Positive-polarity atom collectors over a hop constraint. *)
let rec fold_atoms pol f acc = function
  | Ast.Cand (a, b) | Ast.Cor (a, b) -> fold_atoms pol f (fold_atoms pol f acc a) b
  | Ast.Cnot c -> fold_atoms (not pol) f acc c
  | Ast.Cstar c -> fold_atoms pol f acc c
  | (Ast.Crel _ | Ast.Cin _ | Ast.Csubset _ | Ast.Ccall _ | Ast.Cbind _) as atom ->
      f pol acc atom

let pos_ins c =
  fold_atoms true
    (fun pol acc a -> match a with Ast.Cin (e, g) when pol -> (e, g) :: acc | _ -> acc)
    [] c

let pos_var_eqs c =
  fold_atoms true
    (fun pol acc a ->
      match a with
      | Ast.Crel (Ast.Eq, Ast.Evar x, Ast.Evar y) when pol -> (x, y) :: acc
      | _ -> acc)
    [] c

let rec expr_has_call = function
  | Ast.Elit _ | Ast.Evar _ -> false
  | Ast.Ecall _ -> true

let constr_has_call c =
  fold_atoms true
    (fun _ acc a ->
      acc
      ||
      match a with
      | Ast.Ccall _ -> true
      | Ast.Crel (_, x, y) | Ast.Csubset (x, y) -> expr_has_call x || expr_has_call y
      | Ast.Cin (e, _) -> expr_has_call e
      | Ast.Cbind (_, e) -> expr_has_call e
      | _ -> false)
    false c

(* The compiled scenario's moving parts, exposed for reporting. *)
type plan = {
  pl_scenario : Scenario.t;
  pl_target_key : string;
  pl_expect_revoked : bool;  (** dynamic OASIS006 verdict: carried chains cascade *)
}

let compile ~fed (w : FL.witness) : (plan, string) result =
  try
    let members = FL.members fed in
    let known = List.map (fun m -> m.FL.fl_name) members in
    let require_member what n =
      if not (List.mem (fst n) known) then
        raise
          (Not_compilable
             (Printf.sprintf "%s %s is outside the federation" what (FL.node_str n)))
    in
    require_member "holder" w.FL.w_holder;
    List.iter
      (fun (h : FL.hop) ->
        (match h.FL.h_constr with
        | Some c when constr_has_call c ->
            raise
              (Not_compilable
                 (Printf.sprintf "hop %s uses an extension function" (FL.node_str h.FL.h_node)))
        | _ -> ());
        List.iter (fun (n, _, _) -> require_member "obligation" n) h.FL.h_obligations;
        Option.iter
          (fun (n, _) ->
            require_member "elector" n;
            if fst n <> fst h.FL.h_node then
              raise
                (Not_compilable
                   (Printf.sprintf "elector %s is not local to %s (the engine only \
                                    delegates local elector roles)"
                      (FL.node_str n) (fst h.FL.h_node))))
          h.FL.h_elector)
      w.FL.w_hops;

    (* Type hints: integer-typed symbolic variables default to Int 0. *)
    let hints : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    let note_args node exprs =
      match FL.signature fed node with
      | None -> ()
      | Some tys ->
          List.iteri
            (fun i e ->
              match (e, List.nth_opt tys i) with
              | Ast.Evar v, Some ty -> (
                  match Ty.repr ty with Ty.Int -> Hashtbl.replace hints v () | _ -> ())
              | _ -> ())
            exprs
    in
    note_args w.FL.w_holder w.FL.w_holder_args;
    List.iter
      (fun (h : FL.hop) ->
        note_args h.FL.h_node h.FL.h_args;
        Option.iter (fun (n, args) -> note_args n args) h.FL.h_elector;
        List.iter (fun (n, args, _) -> note_args n args) h.FL.h_obligations)
      w.FL.w_hops;
    let default v = if Hashtbl.mem hints v then V.Int 0 else V.Str ("w_" ^ v) in

    (* A concrete model of the path constraint. *)
    let assignment =
      match w.FL.w_constr with
      | None -> []
      | Some c -> (
          match Analyze.model ~default c with
          | Some (bindings, _) -> bindings
          | None -> raise (Not_compilable "path constraint has no extractable model"))
    in
    let vals : (string, V.t) Hashtbl.t = Hashtbl.create 16 in
    let value_of v =
      match Hashtbl.find_opt vals v with
      | Some x -> x
      | None ->
          let x = match List.assoc_opt v assignment with Some x -> x | None -> default v in
          Hashtbl.replace vals v x;
          x
    in
    (* Var-var equalities are opaque to the model extractor; propagate them
       over unpinned (default-valued) variables. *)
    (match w.FL.w_constr with
    | None -> ()
    | Some c ->
        let eqs = pos_var_eqs c in
        for _pass = 1 to 2 do
          List.iter
            (fun (a, b) ->
              let va = value_of a and vb = value_of b in
              if not (V.equal va vb) then
                if V.equal vb (default b) then Hashtbl.replace vals b va
                else if V.equal va (default a) then Hashtbl.replace vals a vb)
            eqs
        done);
    let rec eval_expr = function
      | Ast.Elit v -> v
      | Ast.Evar v -> value_of v
      | Ast.Ecall _ -> raise (Not_compilable "extension call in a symbolic argument")
    in

    (* Group memberships the chain's constraints positively require, per
       hop service. *)
    let group_seeds =
      List.concat_map
        (fun (h : FL.hop) ->
          match h.FL.h_constr with
          | None -> []
          | Some c ->
              List.map (fun (e, g) -> (fst h.FL.h_node, g, eval_expr e)) (pos_ins c))
        w.FL.w_hops
    in

    (* Colluding electors: one principal per distinct elector node. *)
    let electors =
      let seen : (FL.node, string) Hashtbl.t = Hashtbl.create 4 in
      List.iteri
        (fun i (h : FL.hop) ->
          match h.FL.h_elector with
          | Some (n, _) when not (Hashtbl.mem seen n) ->
              Hashtbl.replace seen n (Printf.sprintf "elector%d" (i + 1))
          | _ -> ())
        w.FL.w_hops;
      seen
    in
    let elector_name n = Hashtbl.find electors n in
    let elector_issues =
      (* newest distinct (node, args, principal) rows for setup *)
      let seen : (FL.node, unit) Hashtbl.t = Hashtbl.create 4 in
      List.filter_map
        (fun (h : FL.hop) ->
          match h.FL.h_elector with
          | Some (n, args) when not (Hashtbl.mem seen n) ->
              Hashtbl.replace seen n ();
              Some (n, args, elector_name n)
          | _ -> None)
        w.FL.w_hops
    in

    let services =
      List.map (fun m -> Scenario.svc m.FL.fl_name (Pretty.to_string m.FL.fl_rolefile)) members
    in
    let principals =
      walker :: List.sort_uniq compare (Hashtbl.fold (fun _ p acc -> p :: acc) electors [])
    in

    let find_service world svc =
      match List.assoc_opt svc world.Scenario.w_services with
      | Some s -> s
      | None -> failwith ("witness scenario: no service " ^ svc)
    in
    let principal world name = Hashtbl.find world.Scenario.w_principals name in
    let mark world label v = Hashtbl.replace world.Scenario.w_marks label v in

    (* Wallet slots.  Distinct obligations can name the same role
       ([Member(p)* /\ Member(q)*]), and a bootstrap obligation on the
       target role would mask the chain-entered certificate under the
       ["Svc.Role"] key the outcome checker reads — so every chain-internal
       certificate lives under its own slot key, and only the final hop's
       certificate is stored under the plain target key. *)
    let n_hops = List.length w.FL.w_hops in
    let holder_slot = "slot:holder" in
    let ob_slot i j = Printf.sprintf "slot:ob:%d:%d" i j in
    let hop_slot i = if i = n_hops - 1 then key w.FL.w_target else Printf.sprintf "slot:hop:%d" i in

    (* Setup: issue every independent obligation, the electors' roles, and
       the holder, through the §4.12 bootstrap. *)
    let setup world =
      let issue p slot n args =
        let cert =
          Service.issue_arbitrary (find_service world (fst n)) ~client:p.Scenario.p_vci
            ~roles:[ snd n ] ~args
        in
        p.Scenario.p_certs <- (slot, cert) :: p.Scenario.p_certs
      in
      let m = principal world walker in
      List.iteri
        (fun i (h : FL.hop) ->
          List.iteri
            (fun j (n, args, _) -> issue m (ob_slot i j) n (List.map eval_expr args))
            h.FL.h_obligations)
        w.FL.w_hops;
      List.iter
        (fun (n, args, who) -> issue (principal world who) (key n) n (List.map eval_expr args))
        elector_issues;
      issue m holder_slot w.FL.w_holder (List.map eval_expr w.FL.w_holder_args);
      mark world "setup" "ok"
    in

    (* One action per hop; elections need the two-step delegation dance. *)
    let hop_action i (h : FL.hop) =
      let label = Printf.sprintf "hop%d-%s" i (snd h.FL.h_node) in
      let via_slot = if i = 0 then holder_slot else hop_slot (i - 1) in
      let use =
        via_slot :: List.mapi (fun j _ -> ob_slot i j) h.FL.h_obligations
      in
      let enter world ?delegation () =
        let m = principal world walker in
        let creds = List.filter_map (fun k -> List.assoc_opt k m.Scenario.p_certs) use in
        (* Request the hop's concrete head arguments: an obligation on the
           same role (e.g. the sponsors in [Member(p)* /\ Member(q)*]) must
           not satisfy the request by itself — the witness claims the
           statement fires. *)
        Service.request_entry
          (find_service world (fst h.FL.h_node))
          ~client_host:world.Scenario.w_client_host ~client:m.Scenario.p_vci
          ~role:(snd h.FL.h_node)
          ~args:(List.map eval_expr h.FL.h_args)
          ~creds ?delegation (function
          | Ok cert ->
              m.Scenario.p_certs <- (hop_slot i, cert) :: m.Scenario.p_certs;
              mark world label "ok"
          | Error e -> mark world label ("err:" ^ e))
      in
      let act world =
        match h.FL.h_elector with
        | None -> enter world ()
        | Some (en, _) -> (
            let colluder = principal world (elector_name en) in
            match List.assoc_opt (key en) colluder.Scenario.p_certs with
            | None -> mark world label "err:no elector credential"
            | Some using ->
                Service.request_delegation
                  (find_service world (fst h.FL.h_node))
                  ~client_host:world.Scenario.w_client_host
                  ~delegator:colluder.Scenario.p_vci ~using ~role:(snd h.FL.h_node)
                  ~required:[] (function
                  | Error e -> mark world label ("err:delegation " ^ e)
                  | Ok (d, _) -> enter world ~delegation:d ()))
      in
      Scenario.step ~at:(0.5 +. (0.4 *. float_of_int i)) label (Scenario.Act act)
    in
    let t_fire = 0.5 +. (0.4 *. float_of_int n_hops) +. 0.4 in
    let target_key = key w.FL.w_target in

    let probe world =
      let m = principal world walker in
      (match List.assoc_opt target_key m.Scenario.p_certs with
      | None -> Hashtbl.replace world.Scenario.w_box "witness" "absent"
      | Some cert -> (
          match
            Service.validate (find_service world (fst w.FL.w_target)) ~client:m.Scenario.p_vci
              cert
          with
          | Ok () -> Hashtbl.replace world.Scenario.w_box "witness" "valid"
          | Error _ -> Hashtbl.replace world.Scenario.w_box "witness" "revoked"));
      mark world "probe" "ok"
    in
    let fire world =
      let m = principal world walker in
      match List.assoc_opt holder_slot m.Scenario.p_certs with
      | None -> mark world "fire" "err:no holder certificate"
      | Some cert ->
          Service.revoke_certificate (find_service world (fst w.FL.w_holder)) cert;
          mark world "fire" "ok"
    in

    let actions =
      Scenario.step ~at:0.1 "setup" (Scenario.Act setup)
      :: List.mapi hop_action w.FL.w_hops
      @ [
          Scenario.step ~at:(t_fire -. 0.1) "probe" (Scenario.Act probe);
          Scenario.step ~at:t_fire "fire" (Scenario.Act fire);
        ]
    in

    let expect_revoked = w.FL.w_carried in
    let scenario =
      {
        Scenario.sc_name =
          Printf.sprintf "witness:%s->%s" (FL.node_str w.FL.w_holder)
            (FL.node_str w.FL.w_target);
        sc_services = services;
        sc_principals = principals;
        sc_actions = actions;
        sc_expect =
          (fun ~done_ ->
            if done_ "fire" then
              [
                ( walker,
                  target_key,
                  if expect_revoked then Scenario.Revoked else Scenario.Valid );
              ]
            else [ (walker, target_key, Scenario.Valid) ]);
        sc_invariants =
          [
            Scenario.Converges;
            Scenario.Custom_final
              ( "witness-executes",
                fun world ->
                  match Hashtbl.find_opt world.Scenario.w_box "witness" with
                  | Some "valid" -> Ok ()
                  | Some other ->
                      Error
                        (Printf.sprintf "target %s was %s before the holder fired"
                           target_key other)
                  | None -> Error "probe never ran" );
          ];
        sc_horizon = t_fire +. 3.0;
        sc_window = (t_fire -. 0.05, t_fire +. 0.3);
        sc_latency = Oasis_sim.Net.Fixed 0.005;
        sc_seed = 7L;
        sc_custom =
          Some
            (fun world ->
              List.iter
                (fun (svc, g, v) -> Group.add (Service.group (find_service world svc) g) v)
                group_seeds);
      }
    in
    Ok { pl_scenario = scenario; pl_target_key = target_key; pl_expect_revoked = expect_revoked }
  with Not_compilable reason -> Error reason

(* ------------------------------------------------------------------ *)
(* Confirmation under the explorer.                                    *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Confirmed of { vf_runs : int; vf_exhaustive : bool }
  | Refuted of { vf_runs : int; vf_invariant : string; vf_detail : string }
  | Uncompilable of string

let default_params = { Explore.default_params with Explore.depth = 6; max_runs = 2_000 }

let confirm ?(params = default_params) ~fed w =
  match compile ~fed w with
  | Error reason -> Uncompilable reason
  | Ok plan -> (
      let report = Explore.explore plan.pl_scenario params in
      match report.Explore.rp_violations with
      | [] ->
          Confirmed
            { vf_runs = report.Explore.rp_runs; vf_exhaustive = report.Explore.rp_exhaustive }
      | cx :: _ ->
          Refuted
            {
              vf_runs = report.Explore.rp_runs;
              vf_invariant = cx.Explore.cx_invariant;
              vf_detail = cx.Explore.cx_detail;
            })

let verdict_str = function
  | Confirmed { vf_runs; vf_exhaustive } ->
      Printf.sprintf "confirmed (%d runs%s)" vf_runs (if vf_exhaustive then ", exhaustive" else "")
  | Refuted { vf_invariant; vf_detail; _ } ->
      Printf.sprintf "REFUTED [%s]: %s" vf_invariant vf_detail
  | Uncompilable reason -> Printf.sprintf "not executable (%s)" reason
