lib/oasis/principal.ml: Format List Printf String
