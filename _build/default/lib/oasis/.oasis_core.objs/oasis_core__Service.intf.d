lib/oasis/service.mli: Cert Credrec Format Group Oasis_events Oasis_rdl Oasis_sim Principal
