(** The pluggable runtime backend signature.

    The engine consumes three substrate capabilities, and only three:

    - {b scheduling/clock} — [now], timers, a run loop
      ({!Oasis_sim.Engine});
    - {b messaging} — [send]/[rpc]/[rpc_retry] and the serialized
      named-port [call] surface ({!Oasis_sim.Net});
    - {b stable storage} — append/sync/scan with the WAL's checksum
      framing untouched ({!Oasis_store.Disk}).

    A backend is a first-class module supplying constructed instances of
    those three.  Protocol code ([Service]/[Broker]/[Shard]/[Replica])
    takes the constructed [Net.t]/[host]/[Disk.t] values exactly as it
    always has — it contains zero backend conditionals and compiles
    unchanged against both implementations:

    - {!Backend_sim}: the deterministic discrete-event simulator.
      Semantics are byte-identical to the pre-backend stack, so every
      existing test, chaos seed, model-checking schedule and bench replays
      unchanged.
    - {!Backend_unix}: a wall-clock monotonic time source, a
      [select]-driven event loop, length-prefixed TCP transport over
      loopback sockets (the WAL's length+SipHash framing idiom), and real
      files with [fsync] behind the {!Oasis_store.Disk} interface.

    The conformance suite ([test/test_backend.ml]) runs one
    send/rpc-timeout/timer-cancel/fsync-crash-tail matrix against both
    modules to keep the substrate contracts aligned. *)

module type S = sig
  val name : string
  (** ["sim"] or ["unix"] — stamped into [BENCH_*.json] snapshots as the
      [backend] field. *)

  val clock_domain : [ `Sim | `Wall ]
  (** What a second of {!Oasis_sim.Engine.now} means: virtual time or
      wall-clock time.  Stamped into snapshots as [clock_domain] so sim
      and wall-clock trajectories are never mixed by downstream tooling. *)

  val engine : Oasis_sim.Engine.t
  val net : Oasis_sim.Net.t

  val disk : Oasis_sim.Net.host -> Oasis_store.Disk.t
  (** The host's stable-storage device (one per host, memoized). *)

  val run : ?until:float -> unit -> unit
  val stop : unit -> unit
end

type t = (module S)

val name : t -> string
val clock_domain : t -> [ `Sim | `Wall ]

val clock_domain_label : t -> string
(** ["sim"] or ["wall"]. *)

val engine : t -> Oasis_sim.Engine.t
val net : t -> Oasis_sim.Net.t
val disk : t -> Oasis_sim.Net.host -> Oasis_store.Disk.t
val run : ?until:float -> t -> unit
val stop : t -> unit
