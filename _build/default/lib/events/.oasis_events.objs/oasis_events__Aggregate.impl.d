lib/events/aggregate.ml: Bead Buffer Composite Event Hashtbl List Oasis_rdl Oasis_util Option Printf String
