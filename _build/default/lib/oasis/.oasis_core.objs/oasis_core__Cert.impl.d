lib/oasis/cert.ml: Credrec Format List Oasis_rdl Oasis_util Principal Printf String
