type client_id = { host : string; local_id : int; boot_time : int }

let pp_client_id ppf c = Format.fprintf ppf "%s:%d@%d" c.host c.local_id c.boot_time
let client_id_to_string c = Format.asprintf "%a" pp_client_id c

let equal_client_id a b =
  String.equal a.host b.host && a.local_id = b.local_id && a.boot_time = b.boot_time

type vci = { v_client : client_id; v_tag : int }

let vci_client v = v.v_client
let vci_tag v = v.v_tag
let equal_vci a b = equal_client_id a.v_client b.v_client && a.v_tag = b.v_tag
let vci_to_string v = Printf.sprintf "%s/v%d" (client_id_to_string v.v_client) v.v_tag

module Host = struct
  type domain = { d_id : int; mutable d_vcis : int list (* tags *) }

  type t = {
    h_name : string;
    h_boot : int;
    mutable h_next_domain : int;
    mutable h_next_vci : int;
    mutable h_domains : domain list;
  }

  let create ?(boot_time = 1) name =
    let t =
      { h_name = name; h_boot = boot_time; h_next_domain = 0; h_next_vci = 0; h_domains = [] }
    in
    let d = { d_id = 0; d_vcis = [] } in
    t.h_next_domain <- 1;
    t.h_domains <- [ d ];
    t

  let name t = t.h_name

  let boot_domain t = List.nth t.h_domains (List.length t.h_domains - 1)

  let client_of t d = { host = t.h_name; local_id = d.d_id; boot_time = t.h_boot }

  let new_vci t d =
    let tag = t.h_next_vci in
    t.h_next_vci <- tag + 1;
    d.d_vcis <- tag :: d.d_vcis;
    { v_client = client_of t d; v_tag = tag }

  let holds d tag = List.mem tag d.d_vcis

  let fork t parent ~give =
    List.iter
      (fun v ->
        if not (holds parent v.v_tag) then
          invalid_arg "Principal.Host.fork: parent does not hold this VCI")
      give;
    let child = { d_id = t.h_next_domain; d_vcis = List.map (fun v -> v.v_tag) give } in
    t.h_next_domain <- t.h_next_domain + 1;
    t.h_domains <- child :: t.h_domains;
    child

  let may_use t d v = String.equal v.v_client.host t.h_name && holds d v.v_tag

  let delegate_vci t d v ~to_ =
    if not (may_use t d v) then invalid_arg "Principal.Host.delegate_vci: not held";
    if not (holds to_ v.v_tag) then to_.d_vcis <- v.v_tag :: to_.d_vcis

  let domain_id d = d.d_id
end
