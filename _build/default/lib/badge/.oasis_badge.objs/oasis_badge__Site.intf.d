lib/badge/site.mli: Oasis_core Oasis_events Oasis_sim
