(** Keyed signatures with variable length and rolling secret tables.

    §4.2 lets each service trade signature cost against security: short
    signatures for cheap services, long ones for careful services.  §5.5.1
    describes the MSSA's rolling table of secrets: a new secret is generated
    periodically, older secrets remain valid for verification until retired,
    so compromise of one secret has a bounded window. *)

type secret

val secret_of_string : string -> secret
val fresh_secret : Prng.t -> secret

type signature = string
(** Hexadecimal; length depends on [length] at signing time. *)

val sign : ?length:int -> secret -> string -> signature
(** [sign ~length secret payload] produces a signature of [length] hex
    characters (default 16, i.e. 64 bits; up to 32 by double hashing). *)

val verify : ?length:int -> secret -> string -> signature -> bool
(** [verify ~length secret payload signature] — [length] is the length the
    {e verifier} expects (default 16, matching {!sign}); a signature of any
    other length is rejected.  The expected length is never inferred from
    the signature itself, so a truncated prefix of a valid signature does
    not verify. *)

(** {1 Rolling secret tables} *)

module Rolling : sig
  type t

  val create : ?capacity:int -> Prng.t -> t
  (** A table holding up to [capacity] (default 4) live secrets. *)

  val roll : t -> unit
  (** Generate and install a fresh current secret, retiring the oldest if the
      table is full.  Certificates signed with retired secrets no longer
      verify. *)

  val sign : ?length:int -> t -> string -> signature
  (** Sign with the current secret; the signature embeds the secret's index
      so verification can locate it. *)

  val verify : ?length:int -> t -> string -> signature -> bool
  (** Verify against whichever live secret signed it; false if that secret
      has been retired or the signature does not match. *)

  val generation : t -> int
  (** Number of [roll]s performed; useful in tests. *)
end
