type occurrence = { at : float; env : Event.env }

type io = {
  subscribe : Event.template -> since:float -> (Event.t -> unit) -> unit -> unit;
  io_horizon : Event.template list -> float;
  on_horizon : (unit -> unit) -> unit -> unit;
  io_now : unit -> float;
  io_after : float -> (unit -> unit) -> unit;
  clock_uncertainty : float;
}

type detector = {
  d_io : io;
  mutable d_beads : int;
  mutable d_kill : unit -> unit;
  mutable d_stopped : bool;
}

(* Each node's [go] returns its kill function.  Killing is idempotent and
   recursive: a parent's kill destroys every child bead it spawned. *)
let rec go d comp s env emit =
  match comp with
  | Composite.Null ->
      emit { at = s; env };
      fun () -> ()
  | Composite.Base (tpl, side) ->
      let tpl = Event.instantiate env tpl in
      d.d_beads <- d.d_beads + 1;
      let dead = ref false in
      let unsub = ref (fun () -> ()) in
      let kill () =
        if not !dead then begin
          dead := true;
          d.d_beads <- d.d_beads - 1;
          !unsub ()
        end
      in
      let u =
        d.d_io.subscribe tpl ~since:s (fun e ->
            if (not !dead) && e.Event.stamp > s then
              match Event.matches ~env tpl e with
              | None -> ()
              | Some env' -> (
                  match Composite.eval_side ~now:(d.d_io.io_now ()) env' side with
                  | None -> ()
                  | Some env'' ->
                      (* A base event yields only its first match (§6.5). *)
                      kill ();
                      emit { at = e.Event.stamp; env = env'' }))
      in
      unsub := u;
      if !dead then u ();
      kill
  | Composite.Seq (a, b) ->
      let children = ref [] in
      let ka =
        go d a s env (fun o ->
            let kb = go d b o.at o.env emit in
            children := kb :: !children)
      in
      fun () ->
        ka ();
        List.iter (fun k -> k ()) !children;
        children := []
  | Composite.Or (a, b) ->
      let ka = go d a s env emit in
      let kb = go d b s env emit in
      fun () ->
        ka ();
        kb ()
  | Composite.Whenever inner ->
      let children = ref [] in
      let dead = ref false in
      let rec spawn s =
        if not !dead then
          let k =
            go d inner s env (fun o ->
                emit o;
                (* Least-solution guard: no progress, no respawn ($null). *)
                if o.at > s then spawn o.at)
          in
          children := k :: !children
      in
      spawn s;
      fun () ->
        dead := true;
        List.iter (fun k -> k ()) !children;
        children := []
  | Composite.Without (a, b, params) -> go_without d a b params s env emit

and go_without d a b params s env emit =
  let io = d.d_io in
  let b_templates = Composite.base_templates b in
  (* §6.8.4: trade a timestamp margin for ordering confidence. *)
  let margin =
    match params.Composite.probability with
    | None -> 0.0
    | Some p -> io.clock_uncertainty *. ((2.0 *. max 0.5 (min 1.0 p)) -. 1.0)
  in
  let blockers = ref [] in
  (* Candidates: occurrences of [a] awaiting certainty that no [b] precedes
     them (event-horizon wait, §6.8.2, or the Delay override, §6.8.3). *)
  let candidates : (occurrence * bool ref) list ref = ref [] in
  let dead = ref false in
  let blocked at = List.exists (fun tb -> tb <= at +. margin) !blockers in
  let settle (o, decided) ~assume_absent =
    if not !decided then
      if blocked o.at then begin
        decided := true;
        d.d_beads <- d.d_beads - 1
      end
      else if assume_absent || io.io_horizon b_templates >= o.at +. margin then begin
        decided := true;
        d.d_beads <- d.d_beads - 1;
        emit o
      end
  in
  let sweep ~assume_absent =
    List.iter (fun c -> settle c ~assume_absent) !candidates;
    candidates := List.filter (fun (_, decided) -> not !decided) !candidates
  in
  let unsub_horizon = io.on_horizon (fun () -> if not !dead then sweep ~assume_absent:false) in
  let kb =
    go d b s env (fun ob ->
        if not !dead then begin
          blockers := ob.at :: !blockers;
          sweep ~assume_absent:false
        end)
  in
  let ka =
    go d a s env (fun o ->
        if not !dead then begin
          let cell = (o, ref false) in
          d.d_beads <- d.d_beads + 1;
          candidates := cell :: !candidates;
          settle cell ~assume_absent:false;
          if not !(snd cell) then begin
            candidates := List.filter (fun (_, decided) -> not !decided) !candidates;
            match params.Composite.delay with
            | Some delay ->
                io.io_after delay (fun () -> if not !dead then settle cell ~assume_absent:true)
            | None -> ()
          end
          else candidates := List.filter (fun (_, decided) -> not !decided) !candidates
        end)
  in
  fun () ->
    if not !dead then begin
      dead := true;
      List.iter (fun (_, decided) -> if not !decided then d.d_beads <- d.d_beads - 1) !candidates;
      candidates := [];
      unsub_horizon ();
      ka ();
      kb ()
    end

let detect io ?(env = []) ?start comp ~on_occur =
  let d = { d_io = io; d_beads = 0; d_kill = (fun () -> ()); d_stopped = false } in
  (* Default start sits just before "now" so an event stamped at this exact
     instant is still caught (base matching is strict-after, §6.5). *)
  let s = match start with Some s -> s | None -> io.io_now () -. 1e-9 in
  d.d_kill <- go d comp s env on_occur;
  d

let stop d =
  if not d.d_stopped then begin
    d.d_stopped <- true;
    d.d_kill ()
  end

let live_beads d = d.d_beads
