module Pqueue = Oasis_util.Pqueue

type held = { h_event : Event.t; h_cb : Event.t -> unit; h_live : bool ref }

let wrap (io : Bead.io) : Bead.io =
  let buffer : held Pqueue.t = Pqueue.create () in
  (* The global horizon: a template with no source pin covers all sources. *)
  let any_template = Event.template "(any)" [] in
  let global_horizon () = io.Bead.io_horizon [ any_template ] in
  let release () =
    let h = global_horizon () in
    let rec go () =
      match Pqueue.peek buffer with
      | Some (stamp, _) when stamp <= h -> (
          match Pqueue.pop buffer with
          | Some (_, held) ->
              if !(held.h_live) then held.h_cb held.h_event;
              go ()
          | None -> ())
      | _ -> ()
    in
    go ()
  in
  let _unsub = io.Bead.on_horizon release in
  {
    io with
    Bead.subscribe =
      (fun tpl ~since cb ->
        let live = ref true in
        let unsub =
          io.Bead.subscribe tpl ~since (fun e ->
              if !live then begin
                Pqueue.push buffer e.Event.stamp { h_event = e; h_cb = cb; h_live = live };
                release ()
              end)
        in
        fun () ->
          live := false;
          unsub ());
    io_horizon = (fun _ -> global_horizon ());
  }
