test/test_mssa.mli:
