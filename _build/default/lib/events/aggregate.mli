(** Aggregation functions over streams of composite event occurrences
    (§6.9–6.11).

    A stream's occurrences are held in a {e two-section priority queue}
    (fig 6.6), ordered by occurrence time.  The {e fixed} section is the
    prefix the system guarantees no further insertion into — it grows as
    event-horizon knowledge arrives (heartbeats, §6.8.2).  An aggregation
    function can act when an occurrence arrives ([event:]), when occurrences
    become fixed ([fixed:], in occurrence-time order) and when the stream
    ends ([end:]).

    Two APIs are provided: a closure-based one ({!aggregate}) and the
    paper's toy C-like language (§6.10, {!parse_program} / {!run_program}).

    Program syntax (line-oriented sections):
    {v
    int t = 0;
    expr:  Deposit(acct, x) - Close(acct)
    until: Close(acct)
    event: t = t + new.x
    fixed:
    end:   signal Total(t)
    v}

    Declarations precede the first section.  [expr:] is a composite event
    expression ({!Composite.parse}); the optional [until:] expression's
    first occurrence terminates the stream.  Statements: assignment,
    [if (e) s else s], [signal Name(e, ...)], [stop], [{ ... }] blocks,
    separated by [;].  Expressions: integer arithmetic ([+ - * /]),
    comparisons, [&&]/[||]/[!], locals, [new.x] (parameter binding [x] of
    the current occurrence) and [new.time] (occurrence time in integer
    milliseconds). *)

type value = Oasis_rdl.Value.t

type handlers = {
  on_event : Bead.occurrence -> unit;
  on_fixed : Bead.occurrence -> unit;
  on_end : unit -> unit;
}

type t

val aggregate :
  Bead.io -> ?env:Event.env -> ?until:Composite.t -> Composite.t -> handlers -> t
(** Run the composite expression, feeding its occurrences through a
    two-section queue into the handlers.  [on_fixed] is called in occurrence
    time order, only for occurrences the horizon has passed. *)

val stop : t -> unit
(** Terminate the stream (fires [on_end] exactly once). *)

val queue_length : t -> int
(** Occurrences received but not yet fixed (variable section size). *)

(** {1 The aggregation language} *)

type program

exception Program_error of string

val parse_program : string -> program

val run_program :
  Bead.io ->
  ?env:Event.env ->
  program ->
  on_signal:(string -> value list -> unit) ->
  t
(** Execute a parsed program; [signal] statements call [on_signal]. *)

(** {1 Library aggregations (§6.11)} *)

val count_program : expr:string -> until:string -> signal:string -> program
(** Counts occurrences of [expr] until [until]; signals [signal(n)]. *)

val maximum_program : expr:string -> param:string -> until:string -> signal:string -> program
(** Tracks the maximum of integer parameter [param]. *)

val first_program : expr:string -> signal:string -> program
(** Signals on the chronologically first occurrence only — needs the fixed
    section, not just arrival order (§6.9.1, §6.11.3). *)

val once_program : expr:string -> signal:string -> program
(** Signals at most once, on arrival order (§6.11.3's Once): cheaper than
    FIRST because it does not wait for the fixed section, at the price of
    possibly reporting a chronologically later occurrence. *)
