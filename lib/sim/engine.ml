type timer = { mutable alive : bool; mutable action : unit -> unit; tag : string }

type event = { ev_at : float; ev_seq : int; ev_tag : string }

type scheduler = event list -> int option

(* An external substrate driving the engine in real time (see
   [Oasis_backend.Backend_unix]).  Without one, the engine is the classic
   deterministic discrete-event simulator: time is virtual and jumps from
   deadline to deadline. *)
type source = {
  src_now : unit -> float;
      (* monotonic seconds; the engine never writes time back *)
  src_wait : until:float option -> bool;
      (* block until roughly [until] (absolute, in [src_now]'s timebase) or
         until external work (e.g. socket readiness) was dispatched;
         [until = None] means "no pending timer — wait for external work
         only".  Returns [false] when no external work can ever arrive
         (no I/O sources registered), which lets [run] terminate. *)
}

type t = {
  mutable now : float;
  queue : timer Oasis_util.Pqueue.t;
  mutable scheduler : scheduler option;
  source : source option;
  mutable stopped : bool;
}

let create ?source () =
  { now = 0.0; queue = Oasis_util.Pqueue.create (); scheduler = None; source; stopped = false }

let now t = match t.source with Some s -> s.src_now () | None -> t.now

let real_time t = t.source <> None

let schedule_at t ?(tag = "") ~at action =
  let at =
    let n = now t in
    if at < n then n else at
  in
  Oasis_util.Pqueue.push t.queue at { alive = true; action; tag }

let schedule t ?tag ~delay action = schedule_at t ?tag ~at:(now t +. delay) action

let timer t ?(tag = "") ~delay action =
  let at = now t +. max 0.0 delay in
  let tm = { alive = true; action; tag } in
  Oasis_util.Pqueue.push t.queue at tm;
  tm

let cancel tm =
  tm.alive <- false;
  tm.action <- (fun () -> ())

let cancelled tm = not tm.alive

let every t ?tag ~period ?jitter action =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  (* The handle returned to the caller is distinct from the queued one-shot
     timers: cancelling it suppresses all future firings. *)
  let handle = { alive = true; action = (fun () -> ()); tag = "" } in
  let rec arm () =
    let extra = match jitter with Some j -> j () | None -> 0.0 in
    (* A pathological jitter ([extra <= -period]) must not re-arm at the
       current instant: the timer would fire and re-arm at one sim time
       forever, and [run ~until] would never terminate.  The effective
       delay is clamped to a positive floor instead. *)
    let delay = Float.max (0.001 *. period) (period +. extra) in
    schedule t ?tag ~delay (fun () ->
        if handle.alive then begin
          action ();
          if handle.alive then arm ()
        end)
  in
  arm ();
  handle

let events t =
  List.filter_map
    (fun (at, seq, tm) ->
      if tm.alive then Some { ev_at = at; ev_seq = seq; ev_tag = tm.tag } else None)
    (Oasis_util.Pqueue.entries t.queue)

let set_scheduler t s = t.scheduler <- s

let exec t at tm =
  t.now <- max t.now at;
  if tm.alive then tm.action ();
  true

let default_step t =
  match Oasis_util.Pqueue.pop t.queue with None -> false | Some (at, tm) -> exec t at tm

let step t =
  match t.scheduler with
  | None -> default_step t
  | Some pick -> (
      match events t with
      | [] -> default_step t (* only cancelled timers left: drain them *)
      | evs -> (
          match pick evs with
          | None -> default_step t
          | Some seq -> (
              match Oasis_util.Pqueue.remove_seq t.queue seq with
              | Some (at, tm) -> exec t at tm
              | None -> default_step t (* stale choice; fall back to earliest *))))

let stop t = t.stopped <- true

(* Real-time loop: timers fire when the external clock passes their
   deadline; between deadlines the source waits (dispatching I/O).  The
   single-step scheduler hook does not apply here — adversarial reordering
   is a virtual-time instrument. *)
let run_real t s ?until () =
  t.stopped <- false;
  let continue = ref true in
  while !continue && not t.stopped do
    t.now <- s.src_now ();
    (match until with
    | Some u when t.now >= u -> continue := false
    | _ ->
        (* Fire everything due, refreshing the clock between events so a
           slow handler does not delay noticing later deadlines. *)
        let rec fire () =
          if not t.stopped then
            match Oasis_util.Pqueue.peek t.queue with
            | Some (at, _) when at <= t.now -> (
                match Oasis_util.Pqueue.pop t.queue with
                | Some (at, tm) ->
                    ignore (exec t at tm);
                    t.now <- s.src_now ();
                    fire ()
                | None -> ())
            | _ -> ()
        in
        fire ();
        if t.stopped then continue := false
        else
          let deadline =
            match (Oasis_util.Pqueue.peek t.queue, until) with
            | Some (at, _), Some u -> Some (Float.min at u)
            | Some (at, _), None -> Some at
            | None, Some u -> Some u
            | None, None -> None
          in
          match deadline with
          | None -> if not (s.src_wait ~until:None) then continue := false
          | Some d -> ignore (s.src_wait ~until:(Some d)))
  done

let run ?until t =
  match t.source with
  | Some s -> run_real t s ?until ()
  | None ->
      let continue = ref true in
      while !continue do
        match Oasis_util.Pqueue.peek t.queue with
        | None ->
            (match until with Some u when u > t.now -> t.now <- u | _ -> ());
            continue := false
        | Some (at, _) -> (
            match until with
            | Some u when at > u ->
                (* With a scheduler installed, [now] may already have run ahead
                   of [until] (the scheduler executes events out of earliest-
                   first order); never move time backwards. *)
                t.now <- max t.now u;
                continue := false
            | _ -> ignore (step t))
      done

let pending t = Oasis_util.Pqueue.length t.queue

let pending_tagged t prefix =
  let plen = String.length prefix in
  List.fold_left
    (fun n (_, _, tm) ->
      if
        tm.alive
        && String.length tm.tag >= plen
        && String.equal (String.sub tm.tag 0 plen) prefix
      then n + 1
      else n)
    0
    (Oasis_util.Pqueue.entries t.queue)
