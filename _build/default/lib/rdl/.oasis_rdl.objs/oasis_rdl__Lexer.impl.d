lib/rdl/lexer.ml: Buffer Format List Printf String
