(** Substitution over RDL expressions and constraints.

    Support for the symbolic escalation prover: rename a statement's local
    variables into a path-global namespace and substitute symbolic arguments
    into its constraint.  See [Oasis.Federation_lint]. *)

type map = (string, Ast.expr) Hashtbl.t
(** Mutable variable-to-expression substitution. *)

val create : unit -> map
val find : map -> string -> Ast.expr option
val bind : map -> string -> Ast.expr -> unit

val expr : ?fresh:(string -> Ast.expr) -> map -> Ast.expr -> Ast.expr
(** Substitute through an expression.  Unmapped variables are passed to
    [fresh] (identity by default), which may mint — and record — a fresh
    path variable. *)

val constr : ?fresh:(string -> Ast.expr) -> map -> Ast.constr -> Ast.constr
(** Substitute through a constraint.  A binder [x <- e] whose left-hand side
    is pinned to a non-variable expression degenerates to the equality test
    the engine's bind-on-bound semantics (§3.2.4) give it. *)

val conj : Ast.constr option -> Ast.constr option -> Ast.constr option
(** Conjunction over optional constraints ([None] = true). *)

val conj_list : Ast.constr option list -> Ast.constr option
