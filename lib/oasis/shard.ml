(* Sharded credential plane: consistent-hash placement plus a router in
   front of N sibling Service replicas.  See shard.mli for the design
   story; the invariant that keeps this module small is that credential
   coherence never lives here — cross-shard edges are external records and
   the §4.10 machinery, exactly as between unrelated services. *)

module Net = Oasis_sim.Net
module Siphash = Oasis_util.Siphash
module Value = Oasis_rdl.Value

type value = Oasis_rdl.Value.t

(* One fixed key: placement must be a pure function of the routing key and
   the ring membership, identical across processes and runs. *)
let ring_key = Siphash.key_of_string "oasis.shard.ring.v1"

module Ring = struct
  type t = {
    r_vnodes : int;
    r_ids : int list;  (* ascending *)
    r_points : (int64 * int) array;  (* (point, shard id), ascending unsigned *)
  }

  let point id v = Siphash.hash ring_key (Printf.sprintf "%d/%d" id v)

  let of_ids ~vnodes ids =
    let pts =
      List.concat_map (fun id -> List.init vnodes (fun v -> (point id v, id))) ids
      |> Array.of_list
    in
    Array.sort
      (fun (p1, i1) (p2, i2) ->
        match Int64.unsigned_compare p1 p2 with 0 -> compare i1 i2 | c -> c)
      pts;
    { r_vnodes = vnodes; r_ids = List.sort compare ids; r_points = pts }

  let make ?(vnodes = 64) ~shards () =
    if shards < 1 then invalid_arg "Ring.make: shards must be >= 1";
    if vnodes < 1 then invalid_arg "Ring.make: vnodes must be >= 1";
    of_ids ~vnodes (List.init shards Fun.id)

  let shard_count t = List.length t.r_ids
  let vnodes t = t.r_vnodes
  let shard_ids t = t.r_ids

  (* First point clockwise from the key's hash, wrapping at the top. *)
  let owner t key =
    let h = Siphash.hash ring_key key in
    let pts = t.r_points in
    let n = Array.length pts in
    let rec bsearch lo hi =
      (* invariant: points below [lo] are < h, points at/above [hi] are >= h *)
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if Int64.unsigned_compare (fst pts.(mid)) h < 0 then bsearch (mid + 1) hi
        else bsearch lo mid
    in
    let i = bsearch 0 n in
    snd pts.(if i = n then 0 else i)

  let add_shard t =
    let fresh = 1 + List.fold_left max (-1) t.r_ids in
    of_ids ~vnodes:t.r_vnodes (t.r_ids @ [ fresh ])

  let remove_shard t id =
    let rest = List.filter (fun i -> i <> id) t.r_ids in
    if rest = [] then invalid_arg "Ring.remove_shard: cannot empty the ring";
    of_ids ~vnodes:t.r_vnodes rest
end

(* Route by role instance, not by principal: one principal's roles may land
   on different shards, which is precisely what exercises cross-shard
   cascades.  The separator cannot occur in marshalled values. *)
let route_key ~role ~args =
  role ^ "(" ^ String.concat "\x01" (List.map Value.marshal args) ^ ")"

type t = {
  sh_net : Net.t;
  sh_name : string;
  sh_router : Net.host;
  sh_ring : Ring.t;
  sh_shards : Service.t array;  (* index = shard id *)
}

let shard_service_name name i = Printf.sprintf "%s#%d" name i

let create net reg ~name ~rolefile ~shards ?(vnodes = 64) ?(heartbeat = 1.0) ?(durable = false)
    ?(snapshot_every = 128) ?(groups = []) ?(lint = `Warn) () =
  if shards < 1 then Error "Shard.create: shards must be >= 1"
  else
    let router = Net.add_host net ("h." ^ name ^ ".router") in
    let ring = Ring.make ~vnodes ~shards () in
    let rec build i acc =
      if i = shards then Ok (List.rev acc)
      else
        let host = Net.add_host net (Printf.sprintf "h.%s.s%d" name i) in
        let disk = if durable then Some (Oasis_store.Disk.create net host ()) else None in
        match
          (* §4.3 compound folding is disabled: it bakes every same-argument
             role derived during an entry into one certificate record, but
             instance-sharding deliberately places those roles on different
             shards — a fold can only ever see its own shard's slice, so the
             sharded and unsharded deployments would diverge.  One
             certificate per entered role instead. *)
          Service.create net host reg ~name:(shard_service_name name i) ~rolefile ~heartbeat
            ?disk ~snapshot_every ~lint ~compound_certificates:false ()
        with
        | Error e -> Error (Printf.sprintf "shard %d: %s" i e)
        | Ok svc ->
            List.iter
              (fun (g, members) ->
                let grp = Service.group svc g in
                List.iter (fun m -> Group.add grp (Value.Str m)) members)
              groups;
            build (i + 1) (svc :: acc)
    in
    match build 0 [] with
    | Error e -> Error e
    | Ok svcs ->
        let arr = Array.of_list svcs in
        Array.iter
          (fun a ->
            Array.iter (fun b -> if a != b then Service.add_sibling a (Service.name b)) arr)
          arr;
        Ok { sh_net = net; sh_name = name; sh_router = router; sh_ring = ring; sh_shards = arr }

let name t = t.sh_name
let ring t = t.sh_ring
let shard_count t = Array.length t.sh_shards
let router_host t = t.sh_router
let shards t = t.sh_shards
let shard t i = t.sh_shards.(i)
let owner_index t ~role ~args = Ring.owner t.sh_ring (route_key ~role ~args)
let owner t ~role ~args = t.sh_shards.(owner_index t ~role ~args)

let shard_by_service_name t svc =
  let n = Array.length t.sh_shards in
  let rec go i =
    if i = n then None
    else if String.equal (Service.name t.sh_shards.(i)) svc then Some t.sh_shards.(i)
    else go (i + 1)
  in
  go 0

(* Routed operations.  The router holds no state: each handler re-derives
   the owner from the request, so retried (hence possibly re-delivered)
   requests are idempotent exactly when the shard-side operation is.  The
   asynchronous ops use rpc_async_retry because their acks are themselves
   asynchronous — a fire ack rides the owning shard's WAL group commit
   (Service.ack_when_durable), and answering from a synchronous handler
   would resurrect the acked-but-lost-firing bug the model checker found
   in PR 6.  Timeouts are generous: the forwarded leg may itself run a
   cross-shard validation RPC with its own retry budget. *)

let routed_timeout = 4.0

let request_entry t ~client_host ~client ~role ~args ?(creds = []) k =
  Net.rpc_async_retry t.sh_net ~category:"shard.entry"
    ~size:(128 + (96 * List.length creds))
    ~timeout:routed_timeout ~src:client_host ~dst:t.sh_router
    (fun reply ->
      let svc = owner t ~role ~args in
      Service.request_entry svc ~client_host:t.sh_router ~client ~role ~args ~creds reply)
    k

let revoke_role_instance t ~client_host ~revoker ~role ~args k =
  Net.rpc_async_retry t.sh_net ~category:"shard.rbr" ~size:160 ~timeout:routed_timeout
    ~src:client_host ~dst:t.sh_router
    (fun reply ->
      let svc = owner t ~role ~args in
      Service.revoke_role_instance svc ~client_host:t.sh_router ~revoker ~role ~args reply)
    k

let reinstate_role_instance t ~client_host ~revoker ~role ~args k =
  Net.rpc_async_retry t.sh_net ~category:"shard.rbr" ~size:160 ~timeout:routed_timeout
    ~src:client_host ~dst:t.sh_router
    (fun reply ->
      let svc = owner t ~role ~args in
      Service.reinstate_role_instance svc ~client_host:t.sh_router ~revoker ~role ~args reply)
    k

let validate t ~client_host ~client ?need_role cert k =
  Net.rpc_async_retry t.sh_net ~category:"shard.validate" ~size:96 ~timeout:routed_timeout
    ~src:client_host ~dst:t.sh_router
    (fun reply ->
      match shard_by_service_name t cert.Cert.service with
      | None -> reply (Error ("certificate for foreign service " ^ cert.Cert.service))
      | Some svc ->
          (* Synchronous at the issuing shard; the record reference in the
             certificate is only meaningful against that shard's table.
             Short budget: the outer retry loop re-forwards on timeout. *)
          Net.rpc_retry t.sh_net ~category:"shard.validate.fwd" ~timeout:1.0 ~attempts:2
            ~backoff:0.25 ~src:t.sh_router ~dst:(Service.host svc)
            (fun () ->
              match Service.validate svc ~client ?need_role cert with
              | Ok () -> Ok ()
              | Error f -> Error (Format.asprintf "%a" Service.pp_failure f))
            reply)
    k

let exit_role t ~client_host cert k =
  Net.rpc_async_retry t.sh_net ~category:"shard.exit" ~size:96 ~timeout:routed_timeout
    ~src:client_host ~dst:t.sh_router
    (fun reply ->
      match shard_by_service_name t cert.Cert.service with
      | None -> reply (Error ("certificate for foreign service " ^ cert.Cert.service))
      | Some svc -> Service.exit_role svc ~client_host:t.sh_router cert reply)
    k

let blacklisted t ~role ~args = Service.blacklisted (owner t ~role ~args) ~role ~args

let fingerprint t =
  let buf = Buffer.create 64 in
  Array.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "%s=%Lx;" (Service.name s) (Service.fingerprint s)))
    t.sh_shards;
  Siphash.hash ring_key (Buffer.contents buf)

let durable_flush t = Array.iter Service.durable_flush t.sh_shards
