(** An OASIS service: rolefile, role-entry engine, certificate issue and
    validation, delegation/election, revocation — chapters 3 and 4.

    A service lives on a simulated host, owns a credential-record table, a
    rolling secret table, a set of local groups and extension functions, and
    an event broker over which it publishes [Modified(crr, state)] events so
    that {e other} services holding certificates it issued can cascade
    revocation (§4.9).  Client-facing operations travel over the simulated
    network; inter-service certificate validation is an RPC to the issuing
    service (§2.10), with the result cached locally as an {e external
    record} kept coherent by event notification and marked [Unknown] when
    heartbeats stop (§4.10). *)

type value = Oasis_rdl.Value.t

type t

(** The name service / trader through which services resolve each other. *)
type registry

val create_registry : unit -> registry
val find_service : registry -> string -> t option

val services : registry -> t list
(** Every registered service, sorted by name.  Used by federation-wide
    tooling ({!Federation_lint}). *)

val create :
  Oasis_sim.Net.t ->
  Oasis_sim.Net.host ->
  registry ->
  name:string ->
  ?rolefile_id:string ->
  rolefile:string ->
  ?funcs:(string * (value list -> (value, string) result)) list ->
  ?resolve_literal:(string -> value option) ->
  ?sig_length:int ->
  ?cache_validation:bool ->
  ?compound_certificates:bool ->
  ?fixpoint_entry:bool ->
  ?heartbeat:float ->
  ?batch_notifications:bool ->
  ?sig_cache_cap:int ->
  ?disk:Oasis_store.Disk.t ->
  ?snapshot_every:int ->
  ?lint:[ `Off | `Warn | `Strict ] ->
  ?register:bool ->
  unit ->
  (t, string) result
(** Parse + type-check the rolefile and install the service.

    [lint] (default [`Warn]) gates registration on the static analyzer
    ({!Oasis_rdl.Analyze}): error-severity diagnostics (never-fires
    statements, unsatisfiable constraints, unknown extension functions,
    arity/type errors) fail [create]; warnings are logged via {!Logs}.
    [`Strict] also fails on warnings; [`Off] skips the analyzer entirely
    (the pre-lint behaviour).  When {!Federation_lint} is linked, the gate
    extends to the federation-wide codes (OASIS001-008) computed over the
    already registered services plus the candidate, restricted to the
    diagnostics anchored at the candidate itself.

    [sig_length]: signature length in hex chars (§4.2's per-service
    trade-off; default 16).  [cache_validation]: cache signature checks
    (default true).  [compound_certificates]: fold same-argument roles
    entered in one request into one certificate (§4.3; default true).
    [fixpoint_entry]: ablation switch — iterate statement application to a
    fixpoint instead of the paper's single in-order pass (default false).
    [heartbeat]: period of this service's broker heartbeats (default 1s).
    [batch_notifications] (default true): coalesce credential-record change
    notifications into one ModifiedBatch digest per peer link, flushed on
    the broker heartbeat tick (bounded by one heartbeat of extra latency);
    with [false], every record change is its own Modified event, as in the
    unbatched scheme benchmarked by e15.  [sig_cache_cap] (default 1024):
    bound on the signature-verification cache (two-generation eviction).

    [disk] enables the durable-state plane: the §4.11 hire/fire databases
    and issued certificates (with their dependency lists) are journalled
    to a write-ahead log on the given stable-storage device, checkpointed
    every [snapshot_every] (default 128) appends, and replayed after a
    host crash+restart — restored certificates resolve again, externals
    re-mirror at [Unknown] until the reread machinery heals them, and
    fired instances stay fired.  The broker's retained event log rides
    the same device.  Without [disk], a crash loses all service state
    (the pre-durability behaviour).

    [register] (default true): install the service in [registry] under its
    name.  Backup replicas of a replica group (see {!Replica}) pass
    [false] — they share the primary's name and must not shadow it; a
    promotion calls {!reregister}. *)

val name : t -> string
val host : t -> Oasis_sim.Net.host

val set_federation_linter :
  (registry -> name:string -> rolefile:Oasis_rdl.Ast.rolefile -> Oasis_rdl.Analyze.diag list) ->
  unit
(** Install the federation-wide lint hook {!create} consults before
    registering a service (the candidate rides along as an extra member).
    Called by {!Federation_lint} at link time; not meant for user code. *)

val add_sibling : t -> string -> unit
(** Declare another registered service a {e sibling shard} of the same
    logical service (same rolefile, disjoint slice of the credential
    records — see {!Shard}).  Unqualified role references in this
    service's rolefile then also accept memberships validated at the
    sibling, and sibling-issued certificates are accepted as fire/re-hire
    revoker credentials (checked at their issuer over the §2.10
    validation RPC and mirrored as external records, since credential
    record references are table-relative).  Symmetric sharding wires
    every pair both ways. *)

val table : t -> Credrec.table
val broker : t -> Oasis_events.Broker.server
val rolefile : t -> Oasis_rdl.Ast.rolefile
val registry : t -> registry

val group : t -> string -> Group.t
(** Find or create a local group. *)

val role_bits : t -> (string * int) list
(** The service's role→bit configuration mapping (§4.3). *)

val roll_secret : t -> unit
(** Install a fresh signing secret (§5.5.1); certificates signed with
    retired secrets stop verifying. *)

(** {1 Validation (§4.2)} *)

type failure =
  | Wrong_client  (** presented by a client other than its holder *)
  | Forged  (** signature check failed *)
  | Wrong_context  (** issued by another service or rolefile *)
  | Insufficient  (** valid but does not embody the needed role *)
  | Revoked  (** credential record is False *)
  | Unknown_state  (** possibly revoked (network failure); fails closed *)

val pp_failure : Format.formatter -> failure -> unit

val validate :
  t -> client:Principal.vci -> ?need_role:string -> Cert.rmc -> (unit, failure) result
(** Full local validation: holder binding, signature (cached when enabled),
    context, optional rights check, credential record state.  Fraudulent and
    erroneous failures are audited separately from revocation (§4.2). *)

val validate_for_peer :
  t -> Cert.rmc -> (string list * value list * Credrec.cref, failure) result
(** The inter-service validation interface (§2.10): returns role names,
    arguments and the CRR; also arms [Modified] event notification for that
    record. *)

(** {1 Role entry} *)

val request_entry :
  t ->
  client_host:Oasis_sim.Net.host ->
  client:Principal.vci ->
  role:string ->
  ?args:value list ->
  ?creds:Cert.rmc list ->
  ?delegation:Cert.delegation ->
  ((Cert.rmc, string) result -> unit) ->
  unit
(** Ask to enter [role], supplying credentials (certificates from this or
    other services) and optionally a delegation certificate.  Statements are
    applied in rolefile order; intermediate roles are entered automatically;
    the first suitable membership is returned (§3.2.2, fig 3.2). *)

(** {1 Delegation and revocation (§4.4–4.5)} *)

val request_delegation :
  t ->
  client_host:Oasis_sim.Net.host ->
  delegator:Principal.vci ->
  using:Cert.rmc ->
  role:string ->
  required:(string * string * value list) list ->
  ?expires_in:float ->
  ?revoke_on_exit:bool ->
  ((Cert.delegation * Cert.revocation, string) result -> unit) ->
  unit
(** The delegator must hold (via [using]) the elector role of an election
    statement for [role].  [required] names the roles the candidate must
    hold ([Value.Str "*"] is a wildcard argument).  [expires_in] arms
    automatic revocation (§4.4); [revoke_on_exit] ties the delegation to the
    delegator's own membership record. *)

val request_revocation :
  t ->
  client_host:Oasis_sim.Net.host ->
  Cert.revocation ->
  ((unit, string) result -> unit) ->
  unit
(** Uses the revocation certificate: checks the delegator still holds the
    delegating role, then invalidates the delegation record (cascades). *)

val delegate_revocation :
  t ->
  client_host:Oasis_sim.Net.host ->
  rcert:Cert.revocation ->
  to_cert:Cert.rmc ->
  ((Cert.revocation, string) result -> unit) ->
  unit
(** Delegate the {e right to revoke} (§4.4): re-issue a revocation
    certificate so that the holder of [to_cert] may exercise it.  The fixed
    policy applies: the recipient must themselves be a member of the
    delegating (elector) role; the new certificate is bound to the
    recipient's membership record, so it dies if they lose the role. *)

val exit_role :
  t ->
  client_host:Oasis_sim.Net.host ->
  Cert.rmc ->
  ((unit, string) result -> unit) ->
  unit
(** Voluntary exit (e.g. logoff): invalidates the certificate's record. *)

(** {1 Role-based revocation (§3.3.2, §4.11)} *)

val revoke_role_instance :
  t ->
  client_host:Oasis_sim.Net.host ->
  revoker:Cert.rmc ->
  role:string ->
  args:value list ->
  ((int, string) result -> unit) ->
  unit
(** A holder of the revoker role named by the [|>] clause revokes every
    live membership of [role(args)] and blacklists the instance ("fire").
    Returns the number of memberships revoked. *)

val reinstate_role_instance :
  t ->
  client_host:Oasis_sim.Net.host ->
  revoker:Cert.rmc ->
  role:string ->
  args:value list ->
  ((unit, string) result -> unit) ->
  unit
(** Remove the blacklist entry ("re-hire", §4.11). *)

(** {1 Interworking (§4.12)} *)

val issue_arbitrary :
  t -> client:Principal.vci -> roles:string list -> args:value list -> Cert.rmc
(** Issue a certificate outside RDL policy — the bootstrap mechanism used by
    password and loader services, and by adapters for legacy schemes. *)

val issue_with_record :
  t -> client:Principal.vci -> roles:string list -> args:value list ->
  crr:Credrec.cref -> Cert.rmc
(** Like {!issue_arbitrary} but embedding a caller-built credential record —
    used by embedding systems (the MSSA custodes) that assemble their own
    membership-rule graphs (§5.5.2). *)

val import_remote_record :
  t -> peer:string -> remote:Credrec.cref -> Credrec.cref
(** The external-record mechanism (§4.9.1) for embedding systems: a local
    surrogate for a record held by [peer], kept coherent by [Modified]
    event notification and marked [Unknown] on missed heartbeats. *)

val mint_delegation_record :
  t ->
  delegator_crr:Credrec.cref ->
  ?expires_in:float ->
  ?revoke_on_exit:bool ->
  unit ->
  Credrec.cref * Cert.revocation
(** Create a delegation credential record plus its matching revocation
    certificate, for embedding systems that implement their own election
    policy (e.g. MSSA per-file delegation, §5.4.3). *)

val revoke_certificate : t -> Cert.rmc -> unit
(** Invalidate the certificate's credential record directly. *)

(** {1 Auditing and accounting (§4.13)} *)

type audit_kind = Fraud | Erroneous | Revocation_denied | Entry | Delegation | Revocation | Exit

type audit_entry = { at : float; kind : audit_kind; detail : string }

val audit_log : t -> audit_entry list
(** Newest first. *)

val crypto_checks : t -> int
(** Signature computations performed (cache misses). *)

val cache_hits : t -> int

val sig_cache_size : t -> int
(** Entries currently held by the (capped) signature cache; hit/miss
    counters also land in the net's {!Oasis_sim.Stats} under
    [oasis.sigcache.*]. *)

val residual_cache_size : t -> int
(** Entries in the compiled-residual cache ([oasis.residual.*] counters). *)

val gc : t -> int
(** Run a credential-record GC sweep; returns slots reclaimed. *)

(** {1 Durability (tests and benches)} *)

val durable_enabled : t -> bool

val durable_issued : t -> int
(** Issued records currently alive in the durable mirror (0 without
    [disk]). *)

val durable_flush : t -> unit
(** Force the write-ahead log's group commit now. *)

val blacklisted : t -> role:string -> args:value list -> bool
(** Is the role instance currently fired (§4.11)? *)

val recover : ?on_done:(unit -> unit) -> t -> unit
(** The restart hook: replay snapshot + log and re-materialise issued
    state.  Registered automatically on host restart when [disk] was
    given (unless {!set_auto_recover} turned it off); exposed for tests
    and for the replica promotion protocol, whose [on_done] fires once
    the replay has actually run — never when a racing crash aborted it. *)

(** {1 Replication hooks ({!Replica} drives these)}

    A replica group runs K full services under ONE name on K hosts: the
    primary's WAL is the authoritative record stream, backups journal
    shipped copies of it, and client acks wait for a write quorum.  The
    hooks below are the whole surface the group needs from the service:
    everything else (identical secrets from the shared name, idempotent
    log replay, §4.10 healing) already holds. *)

val set_replication : t -> sync:((unit -> unit) -> unit) -> unit
(** Install the quorum hook: {e every} client ack that previously rode the
    local group commit ([ack_when_durable]) now rides [sync] instead.
    Also disables log compaction — the WAL must remain the full stream in
    global record coordinates (see DESIGN.md). *)

val set_ship : t -> (string -> unit) option -> unit
(** Install (or clear) the WAL ship observer ({!Oasis_store.Wal.on_append})
    on this service's log.  Only the group's current primary carries it. *)

val set_auto_recover : t -> bool -> unit
(** Whether the host-restart hook replays the log automatically (default
    true).  Replica-group members turn this off: a restarted member
    recovers through the epoch/promotion protocol, which must fetch any
    missing log suffix from its peers {e before} replaying. *)

val durable_sync : t -> (unit -> unit) -> unit
(** Run the callback once everything appended to the local WAL so far is
    durable (the raw, single-host flavour of [ack_when_durable]). *)

val follower_append : t -> string -> unit
(** Journal one record shipped from the primary's stream: same framing and
    group commit as a local append, but invisible to the ship observer and
    to the snapshot bookkeeping. *)

val durable_log_records : t -> string list
(** The durable (synced) prefix of this service's WAL, decoded.  At
    quiescence a backup's list is a prefix of the primary's stream — the
    log-shipping invariant the replication tests assert. *)

val durable_log_rewrite : t -> string list -> (unit -> unit) -> unit
(** Atomically replace the WAL's contents with exactly [records] and run
    the callback once the replacement is durable.  Replication repair only:
    a rejoining member whose log diverged from the stream (an old epoch's
    unacked tail) is rewritten to a true stream prefix, and a promotion
    adopts the winning log wholesale.  The caller must have synced the
    group-commit buffer first. *)

val reregister : t -> unit
(** (Re-)install this service in the registry under its name — how a
    promoted backup takes over the logical service identity. *)

val registered : t -> bool
(** Is this exact instance the one the registry currently resolves? *)

val fingerprint : t -> int64
(** Deterministic hash of the service's protocol-visible state: the
    credential-record table ({!Credrec.fingerprint}), the §4.11 blacklist,
    the pending invalidation digest, and — when durable — the issued
    mirror and the stable-storage device bytes.  Equal fingerprints mean
    two runs reached equivalent service states; the model checker
    ({!Oasis_mc.Explore}) prunes interleavings on it. *)
