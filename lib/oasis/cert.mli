(** Certificate formats (figs 4.2 and 4.3) and their signing payloads.

    A role membership certificate (RMC) names its holder (a VCI), the
    issuing service instance and rolefile, a {e set} of roles (compound
    certificates represent several roles with identical arguments, §4.3),
    the marshalled arguments, a credential record reference used for
    revocation (§4.6) and a variable-length signature.

    Delegation and revocation certificates implement the two-sided
    delegation protocol of §4.4: the delegator obtains a delegation
    certificate (and a matching revocation certificate); the candidate
    presents the delegation certificate, plus certificates for the
    {e required roles} the delegator named, to enter the role. *)

type value = Oasis_rdl.Value.t

type rmc = {
  holder : Principal.vci;
  service : string;  (** issuing service instance *)
  rolefile : string;
  roles : Oasis_util.Bitset.t;  (** bits under the service's role mapping *)
  args : value list;
  crr : Credrec.cref;  (** credential record reference *)
  issued_at : float;
  rmc_sig : string;
}

type delegation = {
  d_service : string;
  d_rolefile : string;
  d_role : string;  (** role the candidate may enter *)
  d_required : (string * string * value list) list;
      (** roles the candidate must hold: (issuing service, role, args);
          arguments may include [Value.Str "*"] wildcards *)
  d_crr : Credrec.cref;  (** the delegation's own credential record *)
  d_delegator_crr : Credrec.cref;  (** delegator's membership record *)
  d_delegator_role : string;  (** elector role the delegation was made under *)
  d_delegator_args : value list;
      (** the elector role's arguments — election statements may bind head
          variables from them (e.g. [Member(q)] in the golf-club example,
          §3.4.5) *)
  d_expires : float option;
  d_sig : string;
}

type revocation = {
  r_service : string;
  r_role : string;
      (** the delegating (elector) role; the fixed policy of §4.4 allows the
          right to revoke to be passed only to another member of it *)
  r_delegator_crr : Credrec.cref;
      (** checked at revocation time: the delegator must still hold the
          delegating role (fig 4.3) *)
  r_target_crr : Credrec.cref;  (** the credential to invalidate *)
  r_sig : string;
}

val rmc_payload : rmc -> string
(** The bytes protected by the RMC signature: holder, service, rolefile,
    role bits, marshalled args, CRR (fig 4.1: a change to any of these
    invalidates the signature). *)

val delegation_payload : delegation -> string
val revocation_payload : revocation -> string

val sign_rmc : Oasis_util.Signing.Rolling.t -> length:int -> rmc -> rmc

val verify_rmc : ?length:int -> Oasis_util.Signing.Rolling.t -> rmc -> bool
(** [length] is the signature length the verifying service is configured
    for (default 16); signatures of any other length — e.g. truncated ones
    — are rejected regardless of content. *)

val sign_delegation : Oasis_util.Signing.Rolling.t -> length:int -> delegation -> delegation
val verify_delegation : ?length:int -> Oasis_util.Signing.Rolling.t -> delegation -> bool

val sign_revocation : Oasis_util.Signing.Rolling.t -> length:int -> revocation -> revocation
val verify_revocation : ?length:int -> Oasis_util.Signing.Rolling.t -> revocation -> bool

val has_role : role_bits:(string * int) list -> rmc -> string -> bool
(** Does the certificate embody the named role under the issuing service's
    role-bit mapping? *)

val pp_rmc : Format.formatter -> rmc -> unit
