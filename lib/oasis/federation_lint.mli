(** Federation-wide static analysis of the cross-service role graph.

    {!Oasis_rdl.Analyze} checks one rolefile at a time; this module checks
    the federation as a whole — services grant roles on the strength of
    roles of other services (§2.10), so the credential graph can contain
    bootstrap deadlocks, unreachable roles and revocation gaps that no
    single-file analysis can see.

    Escalation queries are answered by a {e symbolic prover}: reachability
    is explored over derivation chains carrying a per-path {!witness} — the
    sequence of entry statements, the binding substitutions connecting them,
    and the elector/appointment obligations along the way.  Statement
    variables are renamed into a path-global namespace, the symbolic
    arguments flowing along the chain are substituted into each hop's
    constraint, and paths whose accumulated constraint
    {!Oasis_rdl.Analyze.sat} proves unsatisfiable are pruned: {!can_reach}
    answering [false] means "no feasible symbolic path" (up to the
    documented per-node chain bound), and [true] comes with replayable
    evidence — [Oasis_mc.Witness] compiles a witness into a model-checker
    scenario that executes the chain.

    Diagnostic codes (continuing the [RDLnnn] space):

    {v
    code      severity  meaning
    OASIS001  error     credential cycle with no bootstrap (deadlock)
    OASIS002  warning   role unreachable from the federation's axioms
    OASIS003  error     reference to a role a federation service lacks
    OASIS004  warning   starred prerequisite from outside the federation
                        (no revocation channel to cascade over)
    OASIS005  info      revocable prerequisite consumed without *
    OASIS006  warning   revocation-blind escalation: some hop of a witness
                        chain consumes the holder's flow without *, so
                        firing the holder does not cascade to the target
    OASIS007  warning   low collusion budget: an escalation chain needs at
                        most [collusion_threshold] colluding principals
    OASIS008  warning   cross-realm escalation through interop/bootstrap
                        roles
    v}

    OASIS006–008 are emitted for holders that are not themselves derivable
    from the federation's axioms (base-reachable holders have an empty
    escalation frontier by definition), so healthy federations stay
    diagnostic-free while the CLI's [--escalation] sweep can still print
    witness chains for any holder. *)

type member = {
  fl_name : string;  (** service name, as used in [Service.role] references *)
  fl_file : string;  (** diagnostic anchor, e.g. the rolefile path *)
  fl_rolefile : Oasis_rdl.Ast.rolefile;
}

type node = string * string
(** A role of a service: [(service, role)]. *)

type t

val make : member list -> t
(** Build the federation and run per-member type inference (members whose
    inference fails keep unknown signatures; the per-file pass reports the
    error itself). *)

val of_registry : Service.registry -> t
(** The federation of every service currently registered. *)

val members : t -> member list

val member_context : t -> Oasis_rdl.Analyze.context
(** A per-file analysis context whose [external_sig] resolves against the
    other members' inferred signatures. *)

val signature : t -> node -> Oasis_rdl.Ty.t list option
(** The inferred parameter signature of a role, if its member inferred. *)

val check :
  ?per_file:bool -> ?collusion_threshold:int -> t -> Oasis_rdl.Analyze.diag list
(** Federation-wide diagnostics, sorted by (file, line, code).  With
    [per_file] (default false) the per-rolefile {!Oasis_rdl.Analyze.check}
    diagnostics for each member are included too, computed under
    {!member_context}.  [collusion_threshold] (default 1) arms OASIS007 for
    chains needing at most that many colluding principals. *)

val reachable : t -> (node, unit) Hashtbl.t
(** Least fixpoint of role derivability from the federation's axioms
    (entries with no prerequisites).  Roles of services outside the
    federation are assumed reachable, so "not in the table" is a proof of
    unreachability, not the converse. *)

(** {1 Symbolic escalation prover} *)

(** One derivation step of a witness chain: entering [h_node] by firing
    [h_entry], consuming the chain's previous credential ([h_via], starred
    or not) and — independently — the listed obligations.  All expressions
    are in the chain's path-global variable namespace. *)
type hop = {
  h_node : node;  (** the role this hop enters *)
  h_file : string;
  h_line : int;  (** source line of the fired statement *)
  h_entry : Oasis_rdl.Ast.entry;  (** the statement, as written *)
  h_via : node;  (** the chain prerequisite this hop consumes *)
  h_via_starred : bool;
      (** whether the chain credential is consumed with [*] — the §3.2.3
          cascade edge; a chain with any unstarred hop is revocation-blind *)
  h_elector : (node * Oasis_rdl.Ast.expr list) option;
      (** elector obligation: a colluding principal must hold this role *)
  h_obligations : (node * Oasis_rdl.Ast.expr list * bool) list;
      (** other prerequisite credentials (node, symbolic args, starred),
          assumed independently derivable *)
  h_args : Oasis_rdl.Ast.expr list;  (** symbolic head arguments *)
  h_constr : Oasis_rdl.Ast.constr option;
      (** the statement's constraint plus unification equalities,
          substituted into the path namespace *)
}

(** A feasible symbolic derivation chain from [w_holder] to [w_target]:
    the accumulated path constraint [w_constr] is not provably
    unsatisfiable. *)
type witness = {
  w_holder : node;
  w_holder_args : Oasis_rdl.Ast.expr list;  (** fresh symbolic arguments *)
  w_target : node;
  w_hops : hop list;  (** in derivation order; the first consumes the holder *)
  w_constr : Oasis_rdl.Ast.constr option;  (** conjunction over all hops *)
  w_carried : bool;
      (** every hop consumes its chain credential with [*]: firing the
          holder cascades all the way to the target (§4.11 holds) *)
  w_colluders : int;
      (** minimum distinct colluding principals: the holder plus one per
          distinct elector obligation *)
  w_cross_realm : bool;  (** some hop enters a role outside the holder's service *)
  w_interop : bool;
      (** the chain passes through an interop edge (a reference to a
          service outside the federation) or a bootstrap (axiom) role *)
}

val witnesses : t -> holder:node -> witness list
(** Every node a holder of [holder] can symbolically derive, with one
    (breadth-first, i.e. shortest-found) witness chain each; sorted by
    target, excluding [holder] itself.  Internally up to 4 distinct chains
    per node feed further derivation, so a consumer whose constraint
    conflicts with one chain can connect through an alternative. *)

val escalation_witnesses : t -> holder:node -> witness list
(** {!witnesses} restricted to the escalation frontier: targets that are
    not derivable from the federation's axioms alone. *)

val escalation : t -> holder:node -> node list
(** Targets of {!escalation_witnesses}, sorted.  Symbolically tightened
    relative to the PR 5 boolean bound: every listed node carries a
    feasible witness chain. *)

val can_reach : t -> holder:node -> target:node -> bool
(** Symbolic privilege-escalation query: [false] means no feasible symbolic
    path exists (up to the per-node chain bound); never looser than
    {!boolean_can_reach}. *)

val boolean_can_reach : t -> holder:node -> target:node -> bool
(** The PR 5 boolean least-fixpoint upper bound, kept as the prover's
    soundness reference (symbolic ⊆ boolean, property-tested). *)

val default_holders : t -> node list
(** Holders worth sweeping in [--escalation all]: bootstrap (axiom-entry)
    roles — what [issue_arbitrary] seeds — plus every role not derivable
    from the axioms.  Sorted. *)

val witness_codes : ?collusion_threshold:int -> witness -> string list
(** The OASIS006/007/008 codes a single chain triggers (threshold default
    1); shared by {!check} and the CLI's per-witness report. *)

val node_str : node -> string
(** ["service.role"]. *)
