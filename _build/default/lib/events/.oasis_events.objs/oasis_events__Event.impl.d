lib/events/event.ml: Array Buffer Format List Oasis_rdl Printf String
