test/test_composite.ml: Alcotest List Oasis_events Oasis_rdl
