(** Simulated network: hosts, latency, loss, partitions and RPC.

    Messages are modelled as delayed closures executed "at" the destination;
    the network charges latency, applies loss and partitions, and accounts
    traffic per category in {!Stats}. *)

type t

type latency =
  | Fixed of float
  | Uniform of float * float  (** [lo, hi) *)
  | Exponential of float  (** mean, shifted by a 1ms floor *)

type host

val create : ?seed:int64 -> ?latency:latency -> Engine.t -> t
val engine : t -> Engine.t
val stats : t -> Stats.t
val prng : t -> Oasis_util.Prng.t

val fault : t -> Fault.t
(** The network's fault plane (host crash/restart, link faults, chaos
    schedules).  Addresses passed to {!Fault} functions are
    {!host_addr}s; the wrappers below cover the common cases. *)

val trace : t -> Trace.t
(** The network's tracer (disabled by default).  {!send} captures the
    ambient {!Trace.ctx} at send time and restores it around the delivery
    closure — and around RPC timeout continuations and retry backoffs — so
    spans started by a message handler join the sender's trace. *)

val add_host : t -> ?clock_rate:float -> ?clock_offset:float -> string -> host
val host_name : host -> string
val host_clock : host -> Clock.t
val host_addr : host -> int
val find_host : t -> string -> host option

val set_default_latency : t -> latency -> unit

val set_link_latency : t -> host -> host -> latency -> unit
(** Override latency on the directed link from the first host to the second. *)

val set_loss : t -> float -> unit
(** Probability in [\[0,1\]] that any message is silently dropped. *)

val partition : t -> host -> host -> unit
(** Block traffic in both directions between the two hosts. *)

val heal : t -> host -> host -> unit

val host_up : t -> host -> bool

val crash_host : t -> host -> unit
(** Fail-stop the host: it emits and receives nothing until restarted.
    Messages sent by, in flight to, or addressed to a dead host are
    dropped and accounted under [category ^ ".dead"].  Subsystems holding
    volatile state for the host (e.g. the event broker) react through
    {!on_crash}. *)

val restart_host : t -> host -> unit

val on_crash : t -> host -> (unit -> unit) -> unit
(** Hook fired when this particular host crashes. *)

val on_restart : t -> host -> (unit -> unit) -> unit

val send : t -> ?category:string -> ?size:int -> src:host -> dst:host -> (unit -> unit) -> unit
(** One-way message: the closure runs at the destination after link latency,
    unless lost or partitioned. *)

val rpc :
  t ->
  ?category:string ->
  ?size:int ->
  ?timeout:float ->
  src:host ->
  dst:host ->
  (unit -> ('a, string) result) ->
  (('a, string) result -> unit) ->
  unit
(** Request/response: runs the handler at [dst] after one latency, delivers
    its result back to [src] after another.  If either leg is lost or the
    hosts are partitioned, the continuation receives [Error "timeout"] after
    [timeout] seconds (default 2.0).  A reply arriving after the timeout
    already fired is discarded and counted as [category ^ ".late_reply"]:
    the server-side effects stand, so handlers driven through retrying
    callers must be idempotent. *)

val rpc_retry :
  t ->
  ?category:string ->
  ?size:int ->
  ?timeout:float ->
  ?attempts:int ->
  ?backoff:float ->
  ?max_backoff:float ->
  src:host ->
  dst:host ->
  (unit -> ('a, string) result) ->
  (('a, string) result -> unit) ->
  unit
(** Reliable RPC: like {!rpc} but timeouts are retried with exponential
    backoff ([backoff * 2^n], capped at [max_backoff], default 0.25 s/8 s)
    plus deterministic seeded jitter, up to [attempts] total attempts
    (default 5); then it gives up and surfaces [Error "timeout"].
    Application-level errors are not retried.  Each attempt increments
    [category ^ ".attempt"]; exhausting the budget increments
    [category ^ ".giveup"].  The handler may run more than once (a lost
    reply does not mean a lost request), so it must be idempotent. *)

val rpc_async :
  t ->
  ?category:string ->
  ?size:int ->
  ?timeout:float ->
  src:host ->
  dst:host ->
  ((('a, string) result -> unit) -> unit) ->
  (('a, string) result -> unit) ->
  unit
(** Like {!rpc}, but the handler receives a [reply] closure instead of
    returning its result: it may call it later, from any subsequent engine
    event.  This is the request/response shape for servers whose answer is
    itself asynchronous — an ack that rides a WAL group commit, or a nested
    RPC to another host — where a synchronous handler would have to answer
    before the work is done.  Timeout, late-reply accounting and the
    idempotence obligation are exactly as for {!rpc}; a reply closure
    called twice sends two replies, of which the caller heeds at most
    one. *)

val rpc_async_retry :
  t ->
  ?category:string ->
  ?size:int ->
  ?timeout:float ->
  ?attempts:int ->
  ?backoff:float ->
  ?max_backoff:float ->
  src:host ->
  dst:host ->
  ((('a, string) result -> unit) -> unit) ->
  (('a, string) result -> unit) ->
  unit
(** {!rpc_async} with the {!rpc_retry} discipline: exponential backoff plus
    seeded jitter on timeout, [category ^ ".attempt"]/[".giveup"]
    accounting.  The handler may be {e concurrently} re-invoked while an
    earlier invocation is still working (the caller cannot tell a slow
    server from a lost request), so handlers must be idempotent under
    overlap, not merely under sequential repetition. *)

val local_call : t -> ?category:string -> (unit -> 'a) -> 'a
(** Same-host invocation: zero latency, still accounted. *)

(** {1 Named-port messaging (backend-portable RPC)}

    The closure-based {!rpc} family above only works when both endpoints
    live in one address space.  The named-port surface below carries
    {e serialized} requests instead, so the same calling code runs on the
    sim (in-process delivery through the ordinary latency/loss/fault
    machinery) and on a real backend (framed bytes over a socket to a host
    this process does not own).  Protocol adapters ({!Oasis_core.Remote})
    are written against this surface once and gain both deployments. *)

type remote = {
  rm_call :
    src:string -> dst:string -> port:string -> string -> ((string, string) result -> unit) -> unit;
}
(** The transport hook a real backend installs: deliver one serialized
    request to a named remote host and eventually hand back one reply.
    The hook owns the wire (framing, connections, incoming dispatch);
    {!call} owns timeouts, late-reply accounting and trace-ctx restoration,
    so both backends present identical RPC semantics.  A transport that
    cannot reach [dst] simply never calls back — the caller's timeout
    fires. *)

val set_remote : t -> remote option -> unit

val bind :
  t -> host -> port:string -> (string -> ((string, string) result -> unit) -> unit) -> unit
(** Register the serialized-request handler for [port] at a local host.
    The handler may reply asynchronously, from any later engine event. *)

val unbind : t -> host -> port:string -> unit

val dispatch :
  t -> dst:string -> port:string -> string -> ((string, string) result -> unit) -> unit
(** Deliver an incoming serialized request to a locally-bound handler —
    the entry point a backend's socket loop calls for requests arriving
    off the wire.  Unknown [dst]/[port] answers an [Error] rather than
    raising. *)

val call :
  t ->
  ?category:string ->
  ?size:int ->
  ?timeout:float ->
  src:host ->
  dst:string ->
  port:string ->
  string ->
  ((string, string) result -> unit) ->
  unit
(** One serialized request/response to the named host.  When [dst] is a
    host of this process, this is {!rpc_async} onto the port's bound
    handler (sim latency, loss, partitions and crashes all apply); when it
    is not and a remote transport is installed, the request crosses the
    wire.  Timeout semantics, [".timeout"]/[".late_reply"] accounting and
    trace-ctx propagation are identical on both paths.  Without a
    transport, unknown hosts answer [Error "unknown host: ..."]. *)

val call_retry :
  t ->
  ?category:string ->
  ?size:int ->
  ?timeout:float ->
  ?attempts:int ->
  ?backoff:float ->
  ?max_backoff:float ->
  src:host ->
  dst:string ->
  port:string ->
  string ->
  ((string, string) result -> unit) ->
  unit
(** {!call} with the {!rpc_retry} discipline (exponential backoff, seeded
    jitter, [".attempt"]/[".giveup"] accounting).  Handlers must be
    idempotent: the request may execute more than once. *)
