lib/oasis/service.ml: Acl Cert Credrec Format Fun Group Hashtbl Int64 List Oasis_events Oasis_rdl Oasis_sim Oasis_util Option Principal Printf String
