(* Tests for the extension modules: the event IDL (§6.2.1), the Unix
   legacy filesystem adapter (§3.3.3), the Probability parameter with
   drifting clocks (§6.8.4), and generator-based round-trip properties for
   the two languages. *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Service = Oasis_core.Service
module Group = Oasis_core.Group
module Principal = Oasis_core.Principal
module Unixfs = Oasis_core.Unixfs
module Idl = Oasis_events.Idl
module Event = Oasis_events.Event
module Composite = Oasis_events.Composite
module Bead = Oasis_events.Bead
module Local_io = Oasis_events.Local_io
module Ty = Oasis_rdl.Ty
module V = Oasis_rdl.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- event IDL (§6.2.1) --- *)

let printer_idl =
  {|
interface Printer {
  Print(name: String) : Integer;
  Query(jobno: Integer) : String;
  event Finished(jobno: Integer);
  event Jammed(tray: Integer, code: String);
}
|}

let parse_iface src =
  match Idl.parse src with Ok i -> i | Error e -> Alcotest.failf "idl: %s" e

let test_idl_parse () =
  let iface = parse_iface printer_idl in
  checks "name" "Printer" iface.Idl.if_name;
  checki "ops" 2 (List.length iface.Idl.if_operations);
  checki "events" 2 (List.length iface.Idl.if_events);
  let print_op = List.hd iface.Idl.if_operations in
  checkb "return type" true (Ty.equal print_op.Idl.op_returns Ty.Int)

let test_idl_set_types () =
  let iface = parse_iface {|
interface Files {
  Open(path: String) : Integer;
  event Opened(path: String, mode: {rwx});
}
|} in
  match (List.hd iface.Idl.if_events).Idl.ev_params with
  | [ _; (_, ty) ] -> checkb "set type" true (Ty.equal ty (Ty.Set "rwx"))
  | _ -> Alcotest.fail "params"

let test_idl_parse_errors () =
  checkb "garbage" true (Result.is_error (Idl.parse "not an interface"));
  checkb "missing semi" true
    (Result.is_error (Idl.parse "interface X { event E(a: Integer) }"))

let test_idl_constructor_checks_types () =
  let iface = parse_iface printer_idl in
  (match Idl.construct iface "Finished" [ V.Int 27 ] ~source:"P" () with
  | Ok e ->
      checks "event name" "Finished" e.Event.name;
      checkb "param" true (e.Event.params = [| V.Int 27 |])
  | Error e -> Alcotest.failf "construct: %s" e);
  checkb "wrong type rejected" true
    (Result.is_error (Idl.construct iface "Finished" [ V.Str "27" ] ~source:"P" ()));
  checkb "wrong arity rejected" true
    (Result.is_error (Idl.construct iface "Finished" [] ~source:"P" ()));
  checkb "unknown event rejected" true
    (Result.is_error (Idl.construct iface "Exploded" [ V.Int 1 ] ~source:"P" ()))

let test_idl_destructor () =
  let iface = parse_iface printer_idl in
  let e = Result.get_ok (Idl.construct iface "Jammed" [ V.Int 2; V.Str "E77" ] ~source:"P" ()) in
  match Idl.destruct iface e with
  | Ok [ ("tray", V.Int 2); ("code", V.Str "E77") ] -> ()
  | Ok other ->
      Alcotest.failf "unexpected fields: %s"
        (String.concat "," (List.map fst other))
  | Error e -> Alcotest.failf "destruct: %s" e

let test_idl_template_of () =
  let iface = parse_iface printer_idl in
  (match Idl.template_of iface "Jammed" [ ("tray", Event.Lit (V.Int 2)) ] with
  | Ok tpl ->
      checkb "tray pinned, code wild" true
        (tpl.Event.pats = [| Event.Lit (V.Int 2); Event.Any |])
  | Error e -> Alcotest.failf "template: %s" e);
  checkb "unknown param" true
    (Result.is_error (Idl.template_of iface "Jammed" [ ("nozzle", Event.Any) ]))

let test_idl_pp_roundtrip () =
  let iface = parse_iface printer_idl in
  let printed = Format.asprintf "%a" Idl.pp iface in
  let again = parse_iface printed in
  checkb "pp round trip" true (again = iface)

(* --- Unix legacy filesystem (§3.3.3) --- *)

let make_fs_world tree =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.005) engine in
  let reg = Service.create_registry () in
  let login =
    Result.get_ok
      (Service.create net (Net.add_host net "lh") reg ~name:"Login"
         ~rolefile:{|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
|} ())
  in
  let fs = Result.get_ok (Unixfs.create net (Net.add_host net "fsh") reg ~name:"UnixFS" ~tree) in
  let client_host = Net.add_host net "client" in
  (engine, login, fs, client_host)

let fresh_vci =
  let host = Principal.Host.create "xclient" in
  let domain = Principal.Host.boot_domain host in
  fun () -> Principal.Host.new_vci host domain

let request engine login fs client_host user path =
  let vci = fresh_vci () in
  let login_cert =
    Service.issue_arbitrary login ~client:vci ~roles:[ "LoggedOn" ]
      ~args:[ V.Str user; V.Str "h" ]
  in
  let out = ref None in
  Unixfs.request_use fs ~client_host ~client:vci ~login:login_cert ~path (fun r -> out := Some r);
  Engine.run ~until:(Engine.now engine +. 2.0) engine;
  Option.get !out

let standard_tree =
  [
    ("/", "root=rwx other=r-x");
    ("/home", "other=r-x");
    ("/home/rjh21", "rjh21=rwx %staff=r-x");
    ("/home/rjh21/thesis.tex", "rjh21=rw- %staff=r--");
    ("/vault", "root=rwx");
    ("/vault/secret.txt", "other=rw-");
  ]

let test_unixfs_owner_access () =
  let engine, login, fs, client_host = make_fs_world standard_tree in
  match request engine login fs client_host "rjh21" "/home/rjh21/thesis.tex" with
  | Ok (_, rights) -> checks "owner rights" "rw" rights
  | Error e -> Alcotest.failf "owner access: %s" e

let test_unixfs_group_access () =
  let engine, login, fs, client_host = make_fs_world standard_tree in
  Group.add (Service.group (Unixfs.service fs) "staff") (V.Str "dm");
  match request engine login fs client_host "dm" "/home/rjh21/thesis.tex" with
  | Ok (_, rights) -> checks "staff rights" "r" rights
  | Error e -> Alcotest.failf "group access: %s" e

let test_unixfs_directory_blocks () =
  (* /vault denies 'x' to everyone but root: even though /vault/secret.txt's
     own ACL grants rw to other, the enclosing directory blocks access —
     the recursive UseDir rule at work. *)
  let engine, login, fs, client_host = make_fs_world standard_tree in
  (match request engine login fs client_host "alice" "/vault/secret.txt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "directory permissions bypassed!");
  match request engine login fs client_host "root" "/vault/secret.txt" with
  | Error e -> Alcotest.failf "root blocked: %s" e
  | Ok _ -> ()

let test_unixfs_deep_path () =
  let tree =
    [
      ("/", "other=r-x");
      ("/a", "other=r-x");
      ("/a/b", "other=r-x");
      ("/a/b/c", "other=r-x");
      ("/a/b/c/d", "other=r-x");
      ("/a/b/c/d/leaf", "other=rw-");
    ]
  in
  let engine, login, fs, client_host = make_fs_world tree in
  match request engine login fs client_host "anyone" "/a/b/c/d/leaf" with
  | Ok (_, rights) -> checks "deep leaf rights" "rw" rights
  | Error e -> Alcotest.failf "deep path: %s" e

let test_unixfs_middle_block () =
  let tree =
    [
      ("/", "other=r-x");
      ("/a", "other=r-x");
      ("/a/b", "root=rwx") (* no x for others *);
      ("/a/b/leaf", "other=rw-");
    ]
  in
  let engine, login, fs, client_host = make_fs_world tree in
  match request engine login fs client_host "anyone" "/a/b/leaf" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "middle directory bypassed"

let test_unixfs_certificate_is_genuine () =
  let engine, login, fs, client_host = make_fs_world standard_tree in
  match request engine login fs client_host "rjh21" "/home/rjh21/thesis.tex" with
  | Ok (cert, _) ->
      checkb "validates at the adapter service" true
        (Service.validate (Unixfs.service fs) ~client:cert.Oasis_core.Cert.holder cert = Ok ());
      ignore engine
  | Error e -> Alcotest.failf "%s" e

let test_unixfs_requires_root () =
  checkb "missing root rejected" true
    (let engine = Engine.create () in
     let net = Net.create engine in
     let reg = Service.create_registry () in
     Result.is_error (Unixfs.create net (Net.add_host net "h") reg ~name:"X" ~tree:[ ("/a", "x=r") ]))

(* --- Probability parameter under clock uncertainty (§6.8.4) --- *)

let test_probability_margin_blocks_near_ties () =
  (* With clock uncertainty 1.0s and Probability 0.9, a B stamped up to
     0.8s *after* A must still be treated as a possible predecessor. *)
  let l = Local_io.create ~clock_uncertainty:1.0 () in
  let hits = ref 0 in
  let _ =
    Bead.detect (Local_io.io l) ~start:0.0
      (Composite.parse "srcA.A() - srcB.B() {Probability = 0.9}")
      ~on_occur:(fun _ -> incr hits)
  in
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l ~source:"srcA" "A" []);
  Local_io.set_time l 2.5;
  ignore (Local_io.signal l ~source:"srcB" "B" []) (* 0.5s after A: within margin *);
  Local_io.set_time l 10.0;
  checki "ambiguous ordering blocked at high confidence" 0 !hits

let test_probability_low_confidence_fires () =
  (* Probability 0.5 means plain timestamp order: the same trace fires. *)
  let l = Local_io.create ~clock_uncertainty:1.0 () in
  let hits = ref 0 in
  let _ =
    Bead.detect (Local_io.io l) ~start:0.0
      (Composite.parse "srcA.A() - srcB.B() {Probability = 0.5}")
      ~on_occur:(fun _ -> incr hits)
  in
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l ~source:"srcA" "A" []);
  Local_io.set_time l 2.5;
  ignore (Local_io.signal l ~source:"srcB" "B" []);
  Local_io.set_time l 10.0;
  checki "fires on plain order" 1 !hits

let test_probability_clear_separation_fires () =
  let l = Local_io.create ~clock_uncertainty:1.0 () in
  let hits = ref 0 in
  let _ =
    Bead.detect (Local_io.io l) ~start:0.0
      (Composite.parse "srcA.A() - srcB.B() {Probability = 0.9}")
      ~on_occur:(fun _ -> incr hits)
  in
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l ~source:"srcA" "A" []);
  Local_io.set_time l 5.0;
  ignore (Local_io.signal l ~source:"srcB" "B" []) (* 3s after: beyond margin *);
  Local_io.set_time l 10.0;
  checki "clearly-later B does not block" 1 !hits

(* --- generator-based round trips --- *)

let ident_gen =
  QCheck.Gen.(
    map2
      (fun c s -> String.make 1 c ^ s)
      (char_range 'A' 'Z')
      (string_size ~gen:(char_range 'a' 'z') (int_range 0 6)))

let var_gen =
  (* Avoid RDL keywords ("or", "in", ...) surfacing as variable names. *)
  QCheck.Gen.(
    map
      (fun s ->
        if List.mem s [ "or"; "and"; "not"; "in"; "def"; "import"; "subset" ] then s ^ "v"
        else s)
      (string_size ~gen:(char_range 'a' 'z') (int_range 1 4)))

let pattern_gen =
  QCheck.Gen.(
    frequency
      [
        (2, return Event.Any);
        (3, map (fun v -> Event.Var v) var_gen);
        (2, map (fun n -> Event.Lit (V.Int n)) small_nat);
        (2, map (fun s -> Event.Lit (V.Str s)) (string_size ~gen:(char_range 'a' 'z') (int_range 0 5)));
      ])

let template_gen =
  QCheck.Gen.(
    map2
      (fun name pats -> Event.template name pats)
      ident_gen
      (list_size (int_range 0 3) pattern_gen))

let composite_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 1 then map (fun tpl -> Composite.Base (tpl, [])) template_gen
        else
          frequency
            [
              (3, map (fun tpl -> Composite.Base (tpl, [])) template_gen);
              (2, map2 (fun a b -> Composite.Seq (a, b)) (self (n / 2)) (self (n / 2)));
              (2, map2 (fun a b -> Composite.Or (a, b)) (self (n / 2)) (self (n / 2)));
              ( 2,
                map2
                  (fun a b -> Composite.Without (a, b, Composite.no_params))
                  (self (n / 2)) (self (n / 2)) );
              (1, map (fun c -> Composite.Whenever c) (self (n - 1)));
              (1, return Composite.Null);
            ]))

let composite_arb = QCheck.make ~print:Composite.to_string composite_gen

let prop_composite_pp_parse_roundtrip =
  QCheck.Test.make ~name:"composite pp/parse round trip" ~count:300 composite_arb (fun c ->
      let printed = Composite.to_string c in
      match Composite.parse_result printed with
      | Ok c2 -> Composite.to_string c2 = printed
      | Error _ -> false)

(* RDL entry statements: generate ASTs, print, re-parse, compare. *)
let rdl_arg_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun v -> Oasis_rdl.Ast.Avar v) var_gen);
        (2, map (fun n -> Oasis_rdl.Ast.Alit (V.Int n)) small_nat);
        (2, map (fun s -> Oasis_rdl.Ast.Alit (V.Str s)) (string_size ~gen:(char_range 'a' 'z') (int_range 0 5)));
      ])

let role_ref_gen =
  QCheck.Gen.(
    map3
      (fun role args starred ->
        { Oasis_rdl.Ast.sref = Oasis_rdl.Ast.local_service; role; ref_args = args; starred })
      ident_gen
      (list_size (int_range 0 3) rdl_arg_gen)
      bool)

let entry_gen =
  QCheck.Gen.(
    map3
      (fun head creds (elector, starred) ->
        {
          Oasis_rdl.Ast.head;
          creds;
          elector;
          elect_starred = (match elector with Some _ -> starred | None -> false);
          revoker = None;
          constr = None;
          entry_line = 0;
        })
      (pair ident_gen (list_size (int_range 0 3) rdl_arg_gen))
      (list_size (int_range 0 3) role_ref_gen)
      (pair (option role_ref_gen) bool))

let entry_arb =
  QCheck.make
    ~print:(fun e -> Oasis_rdl.Pretty.entry_to_string e)
    entry_gen

let prop_rdl_entry_roundtrip =
  QCheck.Test.make ~name:"rdl entry pp/parse round trip" ~count:300 entry_arb (fun entry ->
      (* A generated entry with no creds and no elector prints as
         "Head <- " which needs a follow-up statement to terminate; append
         a dummy to make the file well-formed. *)
      let src = Oasis_rdl.Pretty.entry_to_string entry ^ "\nZzz <- \n" in
      match Oasis_rdl.Parser.parse_result src with
      | Error _ -> false
      | Ok rf -> (
          match Oasis_rdl.Ast.entries (Oasis_rdl.Ast.strip_lines rf) with
          | [ parsed; _ ] -> parsed = entry
          | _ -> false))


(* --- composite event service (§6.2.3, §6.8.2) --- *)

module Broker = Oasis_events.Broker
module Composite_service = Oasis_events.Composite_service
module Site = Oasis_badge.Site

let test_composite_service_resignals () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) engine in
  let reg = Service.create_registry () in
  let site = Site.create net reg ~name:"CSite" ~rooms:[ "r1"; "r2" ] ~heartbeat:0.5 () in
  Site.register_badge site ~badge:1 ~user:"a";
  Site.register_badge site ~badge:2 ~user:"b";
  (* The composite server subscribes to the site's Master. *)
  let cs_host = Net.add_host net "cshost" in
  let sessions = ref [] in
  Broker.connect net cs_host (Site.master site)
    ~on_result:(function Ok sess -> sessions := [ sess ] | Error _ -> ())
    ();
  Engine.run ~until:1.0 engine;
  let cs =
    Composite_service.create net cs_host ~name:"CompositeSvc" ~upstreams:!sessions
      ~heartbeat:0.5 ()
  in
  checkb "define ok" true
    (Composite_service.define cs ~signal_as:"Together"
       (Composite.parse "$Seen(A, R); $Seen(B, R) - Seen(A, Rp)")
     = Ok ());
  checkb "duplicate rejected" true
    (Result.is_error (Composite_service.define cs ~signal_as:"Together" Composite.Null));
  (* A downstream client consumes detections as ordinary base events. *)
  let down_host = Net.add_host net "downstream" in
  let got = ref [] in
  Broker.connect net down_host (Composite_service.broker cs)
    ~on_result:(function
      | Ok sess ->
          ignore
            (Broker.register sess
               (Event.template "Together" [ Event.Any; Event.Any; Event.Any; Event.Any ])
               (fun e -> got := e :: !got))
      | Error _ -> ())
    ();
  Engine.run ~until:2.0 engine;
  Site.sight site ~badge:1 ~home:"CSite" ~room:"r1";
  Engine.run ~until:3.0 engine;
  Site.sight site ~badge:2 ~home:"CSite" ~room:"r1";
  Engine.run ~until:6.0 engine;
  checkb "detection re-signalled as base event" true (!got <> []);
  (match !got with
  | e :: _ ->
      (* Parameters are the bindings A, R, B, Rp in first-appearance order. *)
      checkb "A bound" true (e.Event.params.(0) = V.Int 1);
      checkb "B bound" true (e.Event.params.(2) = V.Int 2)
  | [] -> ());
  checkb "count recorded" true (Composite_service.detections cs "Together" >= 1);
  Composite_service.undefine cs "Together";
  checkb "undefined" true (Composite_service.definitions cs = [])

let test_composite_over_composite () =
  (* Second-level composition: detect "Together happened twice" over the
     re-signalled stream — the independence property of §6.8.2. *)
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) engine in
  let reg = Service.create_registry () in
  let site = Site.create net reg ~name:"CSite2" ~rooms:[ "r1" ] ~heartbeat:0.5 () in
  Site.register_badge site ~badge:1 ~user:"a";
  Site.register_badge site ~badge:2 ~user:"b";
  let cs_host = Net.add_host net "cshost2" in
  let sessions = ref [] in
  Broker.connect net cs_host (Site.master site)
    ~on_result:(function Ok sess -> sessions := [ sess ] | Error _ -> ())
    ();
  Engine.run ~until:1.0 engine;
  let cs =
    Composite_service.create net cs_host ~name:"CompositeSvc2" ~upstreams:!sessions
      ~heartbeat:0.5 ()
  in
  ignore
    (Composite_service.define cs ~signal_as:"Meet"
       (Composite.parse "Seen(1, R); Seen(2, R)"));
  (* Downstream bead machine over the composite server's broker. *)
  let down_host = Net.add_host net "downstream2" in
  let dsess = ref [] in
  Broker.connect net down_host (Composite_service.broker cs)
    ~on_result:(function Ok sess -> dsess := [ sess ] | Error _ -> ())
    ();
  Engine.run ~until:2.0 engine;
  let io = Oasis_events.Broker_io.make net down_host !dsess in
  let hits = ref 0 in
  let _ = Bead.detect io ~start:0.0 (Composite.parse "Meet(R)") ~on_occur:(fun _ -> incr hits) in
  Engine.run ~until:3.0 engine;
  Site.sight site ~badge:1 ~home:"CSite2" ~room:"r1";
  Engine.run ~until:4.0 engine;
  Site.sight site ~badge:2 ~home:"CSite2" ~room:"r1";
  Engine.run ~until:8.0 engine;
  checki "composite-over-composite detection" 1 !hits

(* --- per-site local policies (fig 7.2) --- *)

let test_three_site_policies () =
  (* Three sites with different local policies (fig 7.2): Cambridge lets a
     logged-on user watch any badge; ORL only one's own badge; PARC exports
     nothing at all. *)
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.005) engine in
  let reg = Service.create_registry () in
  let cam = Site.create net reg ~name:"Cam" ~rooms:[ "r" ] () in
  let orl = Site.create net reg ~name:"Orl" ~rooms:[ "r" ] () in
  let parc = Site.create net reg ~name:"Parc" ~rooms:[ "r" ] () in
  List.iter (fun s -> Site.register_badge s ~badge:1 ~user:"me") [ cam; orl; parc ];
  List.iter (fun s -> Site.register_badge s ~badge:2 ~user:"other") [ cam; orl; parc ];
  let nsvc =
    Result.get_ok
      (Service.create net (Net.add_host net "ns3") reg ~name:"Namer3"
         ~rolefile:{|
def LoggedOn(u) u: String
def OwnsBadge(u, b) u: String b: Integer
LoggedOn(u) <-
OwnsBadge(u, b) <-
|} ())
  in
  let install site rules_text =
    let rules = Result.get_ok (Oasis_esec.Erdl.parse rules_text) in
    Oasis_esec.Policy.install (Site.master site) ~registry:reg ~rules
  in
  install cam "allow Namer3.LoggedOn(u) : Seen(*, *)";
  install orl "allow Namer3.OwnsBadge(u, b) : Seen(b, *)";
  install parc "deny * : Seen(*, *)";
  let me = fresh_vci () in
  let logged =
    Service.issue_arbitrary nsvc ~client:me ~roles:[ "LoggedOn" ] ~args:[ V.Str "me" ]
  in
  let owns =
    Service.issue_arbitrary nsvc ~client:me ~roles:[ "OwnsBadge" ] ~args:[ V.Str "me"; V.Int 1 ]
  in
  let creds = List.map Oasis_esec.Policy.token_of_cert [ logged; owns ] in
  let watch site =
    let host = Net.add_host net ("w-" ^ Site.name site) in
    let mine = ref 0 and others = ref 0 and admitted = ref false in
    Broker.connect net host (Site.master site) ~credentials:creds
      ~on_result:(function
        | Ok sess ->
            admitted := true;
            ignore
              (Broker.register sess (Event.template "Seen" [ Event.Any; Event.Any ]) (fun e ->
                   if e.Event.params.(0) = V.Int 1 then incr mine else incr others))
        | Error _ -> ())
      ();
    (admitted, mine, others)
  in
  let cam_adm, cam_mine, cam_others = watch cam in
  let orl_adm, orl_mine, orl_others = watch orl in
  let parc_adm, _, _ = watch parc in
  Engine.run ~until:1.0 engine;
  List.iter
    (fun site ->
      Site.sight site ~badge:1 ~home:(Site.name site) ~room:"r";
      Site.sight site ~badge:2 ~home:(Site.name site) ~room:"r")
    [ cam; orl; parc ];
  Engine.run ~until:3.0 engine;
  checkb "Cambridge admits" true !cam_adm;
  checki "Cambridge shows all badges" 1 !cam_others;
  checki "Cambridge shows mine" 1 !cam_mine;
  checkb "ORL admits" true !orl_adm;
  checki "ORL shows only my badge" 0 !orl_others;
  checki "ORL shows mine" 1 !orl_mine;
  checkb "PARC refuses outright" false !parc_adm


(* --- broker delivery invariant under random loss (robustness property) --- *)

let prop_broker_exactly_once_in_order =
  QCheck.Test.make ~name:"broker delivers exactly once, in order, under loss" ~count:25
    QCheck.(pair (int_bound 1000) (int_bound 45))
    (fun (seed, loss_pct) ->
      let engine = Engine.create () in
      let net = Net.create ~seed:(Int64.of_int (seed + 1)) ~latency:(Net.Fixed 0.01) engine in
      let shost = Net.add_host net "s" and chost = Net.add_host net "c" in
      let srv = Broker.create_server net shost ~name:"s" ~heartbeat:0.3 () in
      let session = ref None in
      Broker.connect net chost srv
        ~on_result:(function Ok x -> session := Some x | Error _ -> ())
        ();
      Engine.run ~until:1.0 engine;
      let got = ref [] in
      (match !session with
      | Some sess ->
          ignore
            (Broker.register sess (Event.template "E" [ Event.Any ]) (fun e ->
                 got := e.Event.seq :: !got))
      | None -> ());
      Engine.run ~until:1.5 engine;
      Net.set_loss net (float_of_int loss_pct /. 100.0);
      for i = 1 to 30 do
        Engine.schedule engine ~delay:(0.1 *. float_of_int i) (fun () ->
            ignore (Broker.signal srv "E" [ V.Int i ]))
      done;
      Engine.schedule engine ~delay:4.0 (fun () -> Net.set_loss net 0.0);
      Engine.run ~until:60.0 engine;
      let seqs = List.rev !got in
      List.length seqs = 30 && seqs = List.sort_uniq compare seqs)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "extensions"
    [
      ( "idl",
        [
          Alcotest.test_case "parse" `Quick test_idl_parse;
          Alcotest.test_case "set types" `Quick test_idl_set_types;
          Alcotest.test_case "parse errors" `Quick test_idl_parse_errors;
          Alcotest.test_case "constructor checks types" `Quick test_idl_constructor_checks_types;
          Alcotest.test_case "destructor" `Quick test_idl_destructor;
          Alcotest.test_case "template_of" `Quick test_idl_template_of;
          Alcotest.test_case "pp round trip" `Quick test_idl_pp_roundtrip;
        ] );
      ( "unixfs",
        [
          Alcotest.test_case "owner access" `Quick test_unixfs_owner_access;
          Alcotest.test_case "group access" `Quick test_unixfs_group_access;
          Alcotest.test_case "directory blocks" `Quick test_unixfs_directory_blocks;
          Alcotest.test_case "deep path" `Quick test_unixfs_deep_path;
          Alcotest.test_case "middle block" `Quick test_unixfs_middle_block;
          Alcotest.test_case "certificate genuine" `Quick test_unixfs_certificate_is_genuine;
          Alcotest.test_case "requires root" `Quick test_unixfs_requires_root;
        ] );
      ( "probability",
        [
          Alcotest.test_case "margin blocks near ties" `Quick test_probability_margin_blocks_near_ties;
          Alcotest.test_case "low confidence fires" `Quick test_probability_low_confidence_fires;
          Alcotest.test_case "clear separation fires" `Quick test_probability_clear_separation_fires;
        ] );
      ( "roundtrips",
        [ qt prop_composite_pp_parse_roundtrip; qt prop_rdl_entry_roundtrip ] );
      ( "composite-service",
        [
          Alcotest.test_case "resignals detections" `Quick test_composite_service_resignals;
          Alcotest.test_case "composite over composite" `Quick test_composite_over_composite;
        ] );
      ( "site-policies",
        [ Alcotest.test_case "three sites (fig 7.2)" `Quick test_three_site_policies ] );
      ("robustness", [ qt prop_broker_exactly_once_in_order ]);
    ]
