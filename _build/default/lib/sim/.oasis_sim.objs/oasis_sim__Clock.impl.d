lib/sim/clock.ml: Engine
