(** A composite event service (§6.2.3, §6.8.2).

    The paper's event libraries let services such as {e composite event
    servers} and multiplexers manipulate events without knowing their
    concrete types.  This module is that server: clients hand it composite
    expressions; it evaluates them (bead machine) against its upstream
    broker sessions and {b re-signals each occurrence as a base event} on
    its own broker, so other clients — including other composite servers —
    can consume detections as ordinary events.

    Re-signalled events carry the {e occurrence} time as their stamp, which
    is necessarily out of order with respect to the server's clock;
    the broker is therefore created with a horizon lag covering the longest
    possible detection delay, preserving the event-horizon guarantee for
    downstream [without] evaluations (§6.8.2: "event horizon time stamps do
    not preclude a service from producing events out of order, which is
    important for the independence of composite event activations that are
    re-signalled as base events"). *)

type t

val create :
  Oasis_sim.Net.t ->
  Oasis_sim.Net.host ->
  name:string ->
  upstreams:Broker.session list ->
  ?heartbeat:float ->
  ?horizon_lag:float ->
  ?clock_uncertainty:float ->
  unit ->
  t
(** [horizon_lag] bounds how far behind its clock the server may stamp
    re-signalled occurrences (default 2.0 s). *)

val broker : t -> Broker.server
(** The broker on which detections are re-signalled. *)

val define :
  t ->
  signal_as:string ->
  ?env:Event.env ->
  Composite.t ->
  (unit, string) result
(** Install a composite definition: every occurrence is re-signalled as
    [signal_as(v1, ..., vn)] where the parameters are the occurrence's
    variable bindings in order of first appearance in the expression.
    Fails if a definition with that name already exists. *)

val undefine : t -> string -> unit

val definitions : t -> string list
val detections : t -> string -> int
