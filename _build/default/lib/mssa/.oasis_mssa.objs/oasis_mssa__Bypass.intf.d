lib/mssa/bypass.mli: Custode Oasis_core Oasis_sim Vac
