(** Fault plane: host crash/restart lifecycle and link faults.

    The dissertation reasons explicitly about servers that die (§4.10: a
    server that misses enough acknowledgements "can assume [the client] is
    no longer running") but the simulator historically only modelled loss
    and partitions.  This module gives every host an up/down lifecycle and
    every link an independent fault state, both consulted by {!Net.send}
    and {!Net.rpc}; traffic addressed to (or emitted by) a dead host is
    dropped and accounted under [category ^ ".dead"] by {!Net}.

    Hosts are identified by their {!Net} address (an int) so this module
    carries no dependency on {!Net}; use the wrappers on {!Net} when a
    [Net.host] is at hand.

    Crash semantics are fail-stop: a crashed host emits and receives
    nothing.  What a crash does to {e state} is decided by the subsystems
    that own it, via {!on_crash}/{!on_restart} hooks (the event broker,
    for example, wipes its volatile per-session delivery state but keeps
    its retained-event log, modelling stable storage). *)

type t

type action =
  | Crash of int  (** host address *)
  | Restart of int
  | Link_down of int * int  (** symmetric: both directions fail *)
  | Link_up of int * int

val create : ?seed:int64 -> Engine.t -> Stats.t -> t
(** The seed drives {!chaos} schedules and is independent of the network's
    message-level PRNG, so fault schedules are reproducible on their own. *)

val up : t -> int -> bool
val link_ok : t -> int -> int -> bool

val crash : t -> int -> unit
(** Take the host down (idempotent).  Fires {!on_crash} hooks and counts
    ["fault.crash"] in {!Stats}. *)

val restart : t -> int -> unit
(** Bring the host back up (idempotent).  Fires {!on_restart} hooks and
    counts ["fault.restart"]. *)

val link_down : t -> int -> int -> unit
val link_up : t -> int -> int -> unit

val on_crash : t -> (int -> unit) -> unit
(** Hook called with the address of every host that crashes. *)

val on_restart : t -> (int -> unit) -> unit

val apply : t -> action -> unit

val script : t -> (float * action) list -> unit
(** Schedule a deterministic fault script: each action fires at its
    absolute virtual time (clamped to now if already past). *)

val flap : t -> a:int -> b:int -> every:float -> down_for:float -> until:float -> unit
(** Periodically fail the a<->b link: starting one period from now, the
    link goes down every [every] seconds and heals [down_for] later.  All
    flaps cease (and the link heals) by [until]. *)

val chaos : t -> hosts:int list -> mtbf:float -> mttr:float -> until:float -> unit
(** Seeded random crash/restart cycles for each listed host: exponential
    time-between-failures with mean [mtbf], exponential repair time with
    mean [mttr].  Every host is guaranteed up again by [until].  The whole
    schedule is drawn eagerly from this module's own PRNG, so it depends
    only on the seed, not on simulation interleaving. *)
