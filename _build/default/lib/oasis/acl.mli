(** Access control lists: the standard OASIS/MSSA format (§5.4.4) and the
    Unix legacy mapping (§3.3.3).

    The standard format is an {e ordered} list of positive and negative
    entries.  Rights are computed with the grant/possible-set algorithm of
    §5.4.4: walk the entries in order keeping a set [G] of granted rights
    (initially empty) and a set [P] of still-possible rights (initially
    full); a matching negative entry removes its rights from [P]; a matching
    positive entry adds [P ∩ R] to [G].  No "difficult cases": earlier
    entries always win conflicts. *)

type subject =
  | User of string
  | Group of string
  | Other  (** matches everyone *)

type entry = { negative : bool; subject : subject; rights : string }

type t = entry list

val parse : string -> (t, string) result
(** Syntax: whitespace-separated entries [\[+|-\]subject=rights]; subjects
    starting with [%] are groups, [other] is the wildcard, anything else a
    user.  Example: ["-%student=w +rjh21=rwx +%staff=rx +other=r"].  A
    missing sign means positive. *)

val to_string : t -> string

val rights : t -> user:string -> in_group:(string -> bool) -> full:string -> string
(** The §5.4.4 algorithm.  [full] is the universe of rights for the object
    type; the result is the sorted set of granted rights characters. *)

val unixacl : string -> user:string -> in_group:(string -> bool) -> string
(** Legacy mapping (§3.3.3): ["rjh21=rwx staff=r-x other=r--"] with Unix
    most-closely-binding semantics: the user entry if any, else the union of
    matching group entries, else [other]. ['-'] placeholders are ignored. *)

val groups_mentioned : t -> string list
(** Group names appearing in the list — the memberships a certificate issued
    from this ACL depends on. *)

val to_rdl : ?role:string -> ?cred:string -> full:string -> t -> string
(** Render the ACL as RDL entry statements (§3.3.3): one statement per
    logged-on user granting [role(r)] where [r = acl(...)]; in practice a
    single statement using the [acl] extension function. *)
