(** SipHash-2-4: a fast keyed pseudo-random function.

    OASIS certificates are protected by a keyed integrity check known only to
    the issuing service (§4.2).  The architecture allows each service to pick
    its own signature function; SipHash-2-4 is the default provided here. *)

type key = { k0 : int64; k1 : int64 }

val key_of_string : string -> key
(** Derive a 128-bit key from an arbitrary string (padded/folded). *)

val key_of_int64s : int64 -> int64 -> key

val hash : key -> string -> int64
(** [hash key msg] is the 64-bit SipHash-2-4 of [msg] under [key]. *)

val hash_hex : key -> string -> string
(** Hexadecimal rendering of {!hash}; 16 characters. *)
