(* Sets here are tiny (roles in a rolefile, rights characters), so a single
   63-bit word suffices; [singleton] rejects out-of-range elements loudly. *)

type t = int

let max_element = 62

let empty = 0

let check i =
  if i < 0 || i > max_element then invalid_arg (Printf.sprintf "Bitset: element %d out of range" i)

let singleton i =
  check i;
  1 lsl i

let add i s =
  check i;
  s lor (1 lsl i)

let remove i s =
  check i;
  s land lnot (1 lsl i)

let mem i s = i >= 0 && i <= max_element && s land (1 lsl i) <> 0
let of_list l = List.fold_left (fun s i -> add i s) empty l

let to_list s =
  let rec go i acc = if i < 0 then acc else go (i - 1) (if mem i s then i :: acc else acc) in
  go max_element []

let union = ( lor )
let inter = ( land )
let diff a b = a land lnot b
let subset a b = a land lnot b = 0
let equal = Int.equal
let is_empty s = s = 0

let cardinal s =
  let rec go s acc = if s = 0 then acc else go (s lsr 1) (acc + (s land 1)) in
  go s 0

let compare = Int.compare
let marshal s = Printf.sprintf "%x" s
let unmarshal str = int_of_string_opt ("0x" ^ str)

let pp ppf s =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (to_list s)))
