module Net = Oasis_sim.Net
module Service = Oasis_core.Service
module Cert = Oasis_core.Cert
module Credrec = Oasis_core.Credrec

type route = { rt_top : Vac.t; rt_exec : Cert.rmc }

type t = {
  bp_bottom : Custode.t;
  bp_routes : (string, route) Hashtbl.t;  (* top service name -> route *)
  bp_cache : (string, Credrec.cref) Hashtbl.t;  (* cert signature -> mirrored record *)
  mutable bp_callbacks : int;
}

let create bottom =
  { bp_bottom = bottom; bp_routes = Hashtbl.create 4; bp_cache = Hashtbl.create 64; bp_callbacks = 0 }

let register_route t ~top =
  Hashtbl.replace t.bp_routes (Vac.name top) { rt_top = top; rt_exec = Vac.bottom_exec_cert top }

let cache_size t = Hashtbl.length t.bp_cache
let callbacks_made t = t.bp_callbacks

let read t ~client_host ~cert ~file k =
  let bottom = t.bp_bottom in
  let net = Custode.net bottom in
  let bhost = Custode.host bottom in
  Net.send net ~category:"mssa.bypass" ~src:client_host ~dst:bhost (fun () ->
      let reply r =
        Net.send net ~category:"mssa.bypass.reply" ~src:bhost ~dst:client_host (fun () -> k r)
      in
      match Hashtbl.find_opt t.bp_routes cert.Cert.service with
      | None -> reply (Error ("no bypass route for certificates of " ^ cert.Cert.service))
      | Some route -> (
          let execute () = reply (Custode.read_file bottom ~cert:route.rt_exec ~file) in
          (* Warm path: the mirrored credential record answers locally. *)
          match Hashtbl.find_opt t.bp_cache cert.Cert.rmc_sig with
          | Some local -> (
              match Credrec.state (Service.table (Custode.service bottom)) local with
              | Credrec.True -> execute ()
              | Credrec.False -> reply (Error "certificate revoked")
              | Credrec.Unknown -> reply (Error "certificate state unknown"))
          | None ->
              (* Cold path: callback to the issuing (top-level) service to
                 validate the cryptographic check (fig 5.8b). *)
              t.bp_callbacks <- t.bp_callbacks + 1;
              let top_service = Vac.service route.rt_top in
              Net.rpc net ~category:"mssa.bypass.callback" ~src:bhost
                ~dst:(Vac.host route.rt_top)
                (fun () ->
                  match Service.validate_for_peer top_service cert with
                  | Ok (_, _, remote_ref) -> Ok remote_ref
                  | Error f -> Error (Format.asprintf "%a" Service.pp_failure f))
                (function
                  | Error e -> reply (Error ("bypass callback: " ^ e))
                  | Ok remote_ref ->
                      let local =
                        Service.import_remote_record (Custode.service bottom)
                          ~peer:cert.Cert.service ~remote:remote_ref
                      in
                      Hashtbl.replace t.bp_cache cert.Cert.rmc_sig local;
                      execute ())))
