(** Checkpoints: atomic full-state images that bound log replay.

    A snapshot is one checksum-framed payload written with
    {!Disk.write_atomic}: a crash mid-save leaves the previous snapshot
    intact, never a torn mixture.  The intended protocol is

    + serialise the current state and {!save} it;
    + when the save reports durable, {!Wal.truncate} the log.

    Recovery then loads the snapshot (if any) and replays only the log
    suffix written after it.  Because a crash can land between the two
    steps, replaying the {e full} log over a snapshot must be idempotent —
    the service's record types are upserts, so it is. *)

type t

val create : Disk.t -> file:string -> t
val file : t -> string
val disk : t -> Disk.t

val save : t -> string -> (unit -> unit) -> unit
(** Write the payload as the new snapshot; the callback fires when it is
    durable (never, if the host crashes first). *)

val load : t -> string option
(** The durable snapshot payload, or [None] when absent or (impossible
    under the atomic-write model, but checked anyway) corrupt. *)
