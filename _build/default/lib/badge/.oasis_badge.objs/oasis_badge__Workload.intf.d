lib/badge/workload.mli: Oasis_sim Site
