(* Tests for generic events, templates and the broker: registration,
   delivery, retrospective registration, heartbeats/horizons, loss recovery
   and staleness (§6.2, §6.8, §4.10). *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Event = Oasis_events.Event
module Broker = Oasis_events.Broker
module V = Oasis_rdl.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- templates --- *)

let seen b r = Event.make ~name:"Seen" ~source:"master" ~stamp:1.0 [ V.Int b; V.Str r ]

let test_template_literal_match () =
  let tpl = Event.template "Seen" [ Event.Lit (V.Int 12); Event.Any ] in
  checkb "matches" true (Event.matches tpl (seen 12 "T14") <> None);
  checkb "wrong literal" true (Event.matches tpl (seen 13 "T14") = None)

let test_template_name_and_source () =
  let tpl = Event.template ~source:"other" "Seen" [ Event.Any; Event.Any ] in
  checkb "source mismatch" true (Event.matches tpl (seen 1 "x") = None);
  let tpl2 = Event.template "Blah" [ Event.Any; Event.Any ] in
  checkb "name mismatch" true (Event.matches tpl2 (seen 1 "x") = None)

let test_template_arity () =
  let tpl = Event.template "Seen" [ Event.Any ] in
  checkb "arity mismatch" true (Event.matches tpl (seen 1 "x") = None)

let test_template_var_binding () =
  let tpl = Event.template "Seen" [ Event.Var "b"; Event.Var "r" ] in
  match Event.matches tpl (seen 12 "T14") with
  | Some env ->
      checkb "b bound" true (List.assoc_opt "b" env = Some (V.Int 12));
      checkb "r bound" true (List.assoc_opt "r" env = Some (V.Str "T14"))
  | None -> Alcotest.fail "should match"

let test_template_var_consistency () =
  let tpl = Event.template "Pair" [ Event.Var "x"; Event.Var "x" ] in
  let same = Event.make ~name:"Pair" ~source:"s" [ V.Int 1; V.Int 1 ] in
  let diff = Event.make ~name:"Pair" ~source:"s" [ V.Int 1; V.Int 2 ] in
  checkb "same binds" true (Event.matches tpl same <> None);
  checkb "different fails" true (Event.matches tpl diff = None)

let test_template_env_constrains () =
  let tpl = Event.template "Seen" [ Event.Var "b"; Event.Any ] in
  checkb "pre-bound matching" true
    (Event.matches ~env:[ ("b", V.Int 12) ] tpl (seen 12 "x") <> None);
  checkb "pre-bound mismatched" true
    (Event.matches ~env:[ ("b", V.Int 99) ] tpl (seen 12 "x") = None)

let test_template_instantiate () =
  let tpl = Event.template "Seen" [ Event.Var "b"; Event.Var "r" ] in
  let inst = Event.instantiate [ ("b", V.Int 7) ] tpl in
  checki "one literal now" 1 (Event.specificity inst);
  checkb "still matches" true (Event.matches inst (seen 7 "z") <> None)

(* --- broker plumbing --- *)

type world = {
  engine : Engine.t;
  net : Net.t;
  server_host : Net.host;
  client_host : Net.host;
  server : Broker.server;
}

let make_world ?(heartbeat = 1.0) ?(latency = Net.Fixed 0.01) () =
  let engine = Engine.create () in
  let net = Net.create ~latency engine in
  let server_host = Net.add_host net "server" in
  let client_host = Net.add_host net "client" in
  let server = Broker.create_server net server_host ~name:"svc" ~heartbeat () in
  { engine; net; server_host; client_host; server }

let connect_now w =
  let session = ref None in
  Broker.connect w.net w.client_host w.server
    ~on_result:(function Ok s -> session := Some s | Error e -> Alcotest.failf "connect: %s" e)
    ();
  Engine.run ~until:(Engine.now w.engine +. 1.0) w.engine;
  match !session with Some s -> s | None -> Alcotest.fail "no session"

let run_for w dt = Engine.run ~until:(Engine.now w.engine +. dt) w.engine

let test_broker_deliver () =
  let w = make_world () in
  let s = connect_now w in
  let got = ref [] in
  let _ = Broker.register s (Event.template "Tick" [ Event.Any ]) (fun e -> got := e :: !got) in
  run_for w 0.5;
  ignore (Broker.signal w.server "Tick" [ V.Int 1 ]);
  ignore (Broker.signal w.server "Tock" [ V.Int 2 ]);
  ignore (Broker.signal w.server "Tick" [ V.Int 3 ]);
  run_for w 0.5;
  checki "two matching deliveries" 2 (List.length !got)

let test_broker_multiple_registrations () =
  let w = make_world () in
  let s = connect_now w in
  let a = ref 0 and b = ref 0 in
  let _ = Broker.register s (Event.template "E" [ Event.Lit (V.Int 1) ]) (fun _ -> incr a) in
  let _ = Broker.register s (Event.template "E" [ Event.Any ]) (fun _ -> incr b) in
  run_for w 0.5;
  ignore (Broker.signal w.server "E" [ V.Int 1 ]);
  ignore (Broker.signal w.server "E" [ V.Int 2 ]);
  run_for w 0.5;
  checki "specific" 1 !a;
  checki "wildcard" 2 !b

let test_broker_deregister () =
  let w = make_world () in
  let s = connect_now w in
  let got = ref 0 in
  let reg = Broker.register s (Event.template "E" []) (fun _ -> incr got) in
  run_for w 0.5;
  ignore (Broker.signal w.server "E" []);
  run_for w 0.5;
  Broker.deregister reg;
  run_for w 0.5;
  ignore (Broker.signal w.server "E" []);
  run_for w 0.5;
  checki "no delivery after deregister" 1 !got

let test_broker_retrospective () =
  let w = make_world () in
  let s = connect_now w in
  ignore (Broker.signal w.server "E" [ V.Int 1 ]);
  ignore (Broker.signal w.server "E" [ V.Int 2 ]);
  run_for w 0.5;
  let got = ref [] in
  let _ =
    Broker.register s ~since:0.0 (Event.template "E" [ Event.Any ]) (fun e -> got := e :: !got)
  in
  run_for w 0.5;
  checki "replayed both" 2 (List.length !got);
  (* And subsequent live events still arrive. *)
  ignore (Broker.signal w.server "E" [ V.Int 3 ]);
  run_for w 0.5;
  checki "live after replay" 3 (List.length !got)

let test_broker_retro_since_filters () =
  let w = make_world () in
  let s = connect_now w in
  ignore (Broker.signal w.server "E" [ V.Int 1 ]);
  run_for w 2.0;
  let cut = Engine.now w.engine in
  ignore (Broker.signal w.server "E" [ V.Int 2 ]);
  run_for w 0.2;
  let got = ref [] in
  let _ = Broker.register s ~since:cut (Event.template "E" [ Event.Any ]) (fun e -> got := e :: !got) in
  run_for w 0.5;
  checki "only the recent one" 1 (List.length !got)

let test_broker_retention_purge () =
  let w = make_world () in
  let engine = w.engine in
  let net = w.net in
  let host = w.server_host in
  let short = Broker.create_server net host ~name:"short" ~retention:1.0 () in
  let session = ref None in
  Broker.connect net w.client_host short
    ~on_result:(function Ok s -> session := Some s | Error _ -> ())
    ();
  Engine.run ~until:0.5 engine;
  ignore (Broker.signal short "E" [ V.Int 1 ]);
  Engine.run ~until:5.0 engine;
  ignore (Broker.signal short "F" [ V.Int 0 ]) (* trigger purge *);
  let got = ref 0 in
  let _ =
    Broker.register (Option.get !session) ~since:0.0 (Event.template "E" [ Event.Any ]) (fun _ ->
        incr got)
  in
  Engine.run ~until:6.0 engine;
  checki "expired event not replayed" 0 !got

let test_broker_horizon_advances () =
  let w = make_world ~heartbeat:0.5 () in
  let s = connect_now w in
  let initial = Broker.horizon s in
  run_for w 3.0;
  checkb "horizon advanced" true (Broker.horizon s > initial);
  checkb "roughly tracks time" true (Broker.horizon s <= Engine.now w.engine)

let test_broker_horizon_callbacks () =
  let w = make_world ~heartbeat:0.5 () in
  let s = connect_now w in
  let calls = ref 0 in
  Broker.on_horizon s (fun _ -> incr calls);
  run_for w 3.0;
  checkb "several advances" true (!calls >= 4)

let test_broker_staleness_on_partition () =
  let w = make_world ~heartbeat:0.5 () in
  let s = connect_now w in
  let transitions = ref [] in
  Broker.on_staleness s (fun st -> transitions := st :: !transitions);
  run_for w 2.0;
  checkb "fresh while connected" false (Broker.stale s);
  Net.partition w.net w.server_host w.client_host;
  run_for w 3.0;
  checkb "stale after partition" true (Broker.stale s);
  Net.heal w.net w.server_host w.client_host;
  run_for w 3.0;
  checkb "recovered" false (Broker.stale s);
  checkb "both transitions seen" true
    (List.mem true !transitions && List.mem false !transitions)

let test_broker_loss_recovery () =
  (* With heavy message loss, sequence-gap nacks and heartbeat-driven
     resends must still deliver every event eventually. *)
  let w = make_world ~heartbeat:0.5 () in
  let s = connect_now w in
  let got = ref [] in
  let _ = Broker.register s (Event.template "E" [ Event.Any ]) (fun e -> got := e :: !got) in
  run_for w 0.5;
  Net.set_loss w.net 0.4;
  for i = 1 to 20 do
    ignore (Broker.signal w.server "E" [ V.Int i ]);
    run_for w 0.2
  done;
  Net.set_loss w.net 0.0;
  run_for w 30.0;
  checki "all twenty delivered" 20 (List.length !got);
  (* In order despite resends. *)
  let seqs = List.rev_map (fun e -> e.Event.seq) !got in
  checkb "in order" true (seqs = List.sort compare seqs)

let test_broker_admission_control () =
  let w = make_world () in
  Broker.set_admission w.server (fun ~credentials -> List.mem "magic" credentials);
  let refused = ref false and admitted = ref false in
  Broker.connect w.net w.client_host w.server
    ~on_result:(function Error _ -> refused := true | Ok _ -> ())
    ();
  Broker.connect w.net w.client_host w.server ~credentials:[ "magic" ]
    ~on_result:(function Ok _ -> admitted := true | Error _ -> ())
    ();
  run_for w 1.0;
  checkb "refused without credential" true !refused;
  checkb "admitted with credential" true !admitted

let test_broker_registration_filter () =
  let w = make_world () in
  (* Policy: narrow any Seen template to room "T14" only. *)
  Broker.set_registration_filter w.server (fun ~credentials:_ tpl ->
      if tpl.Event.tname = "Seen" then
        Some (Event.template "Seen" [ Event.Any; Event.Lit (V.Str "T14") ])
      else None);
  let s = connect_now w in
  let seen_events = ref 0 and other = ref 0 in
  let _ = Broker.register s (Event.template "Seen" [ Event.Any; Event.Any ]) (fun _ -> incr seen_events) in
  let _ = Broker.register s (Event.template "Other" []) (fun _ -> incr other) in
  run_for w 0.5;
  ignore (Broker.signal w.server "Seen" [ V.Int 1; V.Str "T14" ]);
  ignore (Broker.signal w.server "Seen" [ V.Int 1; V.Str "T15" ]);
  ignore (Broker.signal w.server "Other" []);
  run_for w 0.5;
  checki "narrowed" 1 !seen_events;
  checki "rejected registration silent" 0 !other

let test_broker_close () =
  let w = make_world () in
  let s = connect_now w in
  let got = ref 0 in
  let _ = Broker.register s (Event.template "E" []) (fun _ -> incr got) in
  run_for w 0.5;
  Broker.close s;
  run_for w 0.5;
  ignore (Broker.signal w.server "E" []);
  run_for w 0.5;
  checki "closed session gets nothing" 0 !got;
  checki "server dropped session" 0 (Broker.sessions w.server)

let test_broker_stamps_monotone () =
  let w = make_world () in
  let e1 = Broker.signal w.server "E" [] in
  let e2 = Broker.signal w.server "E" [] in
  checkb "monotone stamps" true (e2.Event.stamp > e1.Event.stamp)

let () =
  Alcotest.run "events"
    [
      ( "templates",
        [
          Alcotest.test_case "literal match" `Quick test_template_literal_match;
          Alcotest.test_case "name and source" `Quick test_template_name_and_source;
          Alcotest.test_case "arity" `Quick test_template_arity;
          Alcotest.test_case "var binding" `Quick test_template_var_binding;
          Alcotest.test_case "var consistency" `Quick test_template_var_consistency;
          Alcotest.test_case "env constrains" `Quick test_template_env_constrains;
          Alcotest.test_case "instantiate" `Quick test_template_instantiate;
        ] );
      ( "broker",
        [
          Alcotest.test_case "deliver" `Quick test_broker_deliver;
          Alcotest.test_case "multiple registrations" `Quick test_broker_multiple_registrations;
          Alcotest.test_case "deregister" `Quick test_broker_deregister;
          Alcotest.test_case "retrospective" `Quick test_broker_retrospective;
          Alcotest.test_case "retro since filters" `Quick test_broker_retro_since_filters;
          Alcotest.test_case "retention purge" `Quick test_broker_retention_purge;
          Alcotest.test_case "horizon advances" `Quick test_broker_horizon_advances;
          Alcotest.test_case "horizon callbacks" `Quick test_broker_horizon_callbacks;
          Alcotest.test_case "staleness on partition" `Quick test_broker_staleness_on_partition;
          Alcotest.test_case "loss recovery" `Quick test_broker_loss_recovery;
          Alcotest.test_case "admission control" `Quick test_broker_admission_control;
          Alcotest.test_case "registration filter" `Quick test_broker_registration_filter;
          Alcotest.test_case "close" `Quick test_broker_close;
          Alcotest.test_case "stamps monotone" `Quick test_broker_stamps_monotone;
        ] );
    ]
