(** Discrete-event simulation engine.

    The paper evaluated OASIS on a live testbed; we substitute a deterministic
    simulator (see DESIGN.md, Substitutions).  Virtual time is a float in
    seconds.  All services, networks and workloads schedule closures here. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the closure [delay] seconds from now.  Negative delays are clamped to
    zero (fire this instant, after currently-queued same-time events). *)

val schedule_at : t -> at:float -> (unit -> unit) -> unit

type timer
(** A cancellable scheduled action. *)

val timer : t -> delay:float -> (unit -> unit) -> timer
val cancel : timer -> unit
val cancelled : timer -> bool

val every : t -> period:float -> ?jitter:(unit -> float) -> (unit -> unit) -> timer
(** Periodic action; cancelling the returned timer stops the series.  If
    [jitter] is given, its value is added to each period; the effective
    delay is clamped to a positive floor ([period / 1000]) so a pathological
    jitter cannot re-arm the timer at the same instant forever. *)

val step : t -> bool
(** Execute the next pending event; [false] if the queue is empty. *)

val run : ?until:float -> t -> unit
(** Drain the event queue, or stop once the next event lies beyond [until]
    (advancing [now] to [until] in that case). *)

val pending : t -> int
