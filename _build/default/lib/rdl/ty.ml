type t = Int | Str | Set of string | Obj of string | Var of var ref
and var = Unbound of int | Link of t

let counter = ref 0

let fresh () =
  incr counter;
  Var (ref (Unbound !counter))

let rec repr = function
  | Var ({ contents = Link t } as r) ->
      let t' = repr t in
      r := Link t';
      t'
  | t -> t

let rec occurs r = function
  | Var r' when r == r' -> true
  | Var { contents = Link t } -> occurs r t
  | Var { contents = Unbound _ } | Int | Str | Set _ | Obj _ -> false

let rec pp ppf t =
  match repr t with
  | Int -> Format.pp_print_string ppf "Integer"
  | Str -> Format.pp_print_string ppf "String"
  | Set alphabet -> Format.fprintf ppf "{%s}" alphabet
  | Obj name -> Format.pp_print_string ppf name
  | Var { contents = Unbound n } -> Format.fprintf ppf "'t%d" n
  | Var { contents = Link _ } -> assert false

let to_string t = Format.asprintf "%a" pp t

let unify a b =
  let rec go a b =
    let a = repr a and b = repr b in
    match (a, b) with
    | Int, Int | Str, Str -> Ok ()
    | Set x, Set y when String.equal x y -> Ok ()
    | Obj x, Obj y when String.equal x y -> Ok ()
    | Var r, t | t, Var r ->
        if a == b then Ok ()
        else if occurs r t then Error "recursive type"
        else begin
          r := Link t;
          Ok ()
        end
    | (Int | Str | Set _ | Obj _), (Int | Str | Set _ | Obj _) ->
        Error (Printf.sprintf "type mismatch: %s vs %s" (to_string a) (to_string b))
  in
  go a b

let of_value = function
  | Value.Int _ -> Int
  | Value.Str _ -> Str
  | Value.Set s -> Set s
  | Value.Obj (ty, _) -> Obj ty

let compatible_value t v =
  match (repr t, v) with
  | Int, Value.Int _ -> true
  | Str, Value.Str _ -> true
  | Set alphabet, Value.Set elements -> String.for_all (fun c -> String.contains alphabet c) elements
  | Obj name, Value.Obj (ty, _) -> String.equal name ty
  | Var _, _ -> true
  | (Int | Str | Set _ | Obj _), _ -> false

let is_ground t = match repr t with Var _ -> false | Int | Str | Set _ | Obj _ -> true

let equal a b =
  match (repr a, repr b) with
  | Int, Int | Str, Str -> true
  | Set x, Set y | Obj x, Obj y -> String.equal x y
  | Var x, Var y -> x == y
  | (Int | Str | Set _ | Obj _ | Var _), _ -> false
