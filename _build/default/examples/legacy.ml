(* Interworking with legacy systems (§3.3.3, §4.12).

   Two adapters in one world:

   - a Unix-style filing system whose directory-and-file ACL discipline is
     expressed *in RDL* (per-node ACL statements plus the recursive
     InDir/Root rules), so OASIS can reason about it and issue genuine
     certificates for it;

   - an organisational-role bridge mirroring externally-managed roles
     (manager, project_leader) as OASIS certificates, which then open doors
     at a native OASIS service.

   Run with: dune exec examples/legacy.exe *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Service = Oasis_core.Service
module Group = Oasis_core.Group
module Principal = Oasis_core.Principal
module Unixfs = Oasis_core.Unixfs
module Interop = Oasis_core.Interop
module V = Oasis_rdl.Value

let say fmt = Printf.printf (fmt ^^ "\n")

let () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) engine in
  let registry = Service.create_registry () in
  let client_host = Net.add_host net "client" in
  let run dt = Engine.run ~until:(Engine.now engine +. dt) engine in

  let login =
    Result.get_ok
      (Service.create net (Net.add_host net "login") registry ~name:"Login"
         ~rolefile:{|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
|} ())
  in
  let ph = Principal.Host.create "client" in
  let dom = Principal.Host.boot_domain ph in
  let user name =
    let vci = Principal.Host.new_vci ph dom in
    ( vci,
      Service.issue_arbitrary login ~client:vci ~roles:[ "LoggedOn" ]
        ~args:[ V.Str name; V.Str "client" ] )
  in

  (* ---------------------------------------------------------------- *)
  say "--- a Unix filing system, expressed in RDL (§3.3.3) ---";
  let fs =
    Result.get_ok
      (Unixfs.create net (Net.add_host net "fs") registry ~name:"UnixFS"
         ~tree:
           [
             ("/", "root=rwx other=r-x");
             ("/home", "other=r-x");
             ("/home/rjh21", "rjh21=rwx %opera=r-x");
             ("/home/rjh21/thesis.tex", "rjh21=rw- %opera=r--");
             ("/vault", "root=rwx");
             ("/vault/secrets", "other=rw-");
           ])
  in
  Group.add (Service.group (Unixfs.service fs) "opera") (V.Str "jmb");
  say "the adapter generated this rolefile from the tree:";
  say "%s" (Oasis_rdl.Pretty.to_string (Service.rolefile (Unixfs.service fs)));

  let try_path name path =
    let vci, cert = user name in
    Unixfs.request_use fs ~client_host ~client:vci ~login:cert ~path (function
      | Ok (_, rights) -> say "  %-8s %-28s -> {%s}" name path rights
      | Error e -> say "  %-8s %-28s -> DENIED (%s)" name path e)
  in
  try_path "rjh21" "/home/rjh21/thesis.tex";
  try_path "jmb" "/home/rjh21/thesis.tex";
  try_path "eve" "/home/rjh21/thesis.tex";
  (* The kicker: the file's own ACL says anyone may read/write, but the
     enclosing /vault denies search permission — exactly Unix semantics,
     derived through the recursive UseDir rule. *)
  try_path "eve" "/vault/secrets";
  run 5.0;

  (* ---------------------------------------------------------------- *)
  say "\n--- organisational roles bridged into OASIS (§4.12) ---";
  let org =
    Result.get_ok
      (Service.create net (Net.add_host net "org") registry ~name:"Org"
         ~rolefile:{|
def OrgRole(r) r: String
OrgRole(r) <-
|} ())
  in
  let bridge = Interop.Orgroles.create org in
  (* A native OASIS service keyed off the foreign scheme's roles. *)
  let budget =
    Result.get_ok
      (Service.create net (Net.add_host net "budget") registry ~name:"Budget"
         ~rolefile:{|
Approve <- Org.OrgRole("manager")*
View <- Org.OrgRole(r)
|} ())
  in
  let boss, _ = user "boss" in
  let boss_role = Result.get_ok (Interop.Orgroles.assert_role bridge ~client:boss ~org_role:"manager") in
  let approver = ref None in
  Service.request_entry budget ~client_host ~client:boss ~role:"Approve" ~creds:[ boss_role ]
    (function Ok c -> approver := Some c | Error e -> say "entry failed: %s" e);
  run 2.0;
  (match !approver with
  | Some c ->
      say "the manager (a role managed outside OASIS) may Approve budgets";
      run 2.0;
      (* HR fires the manager in the foreign system; the bridge retracts,
         and the starred credential cascades. *)
      Interop.Orgroles.retract_role bridge ~client:boss ~org_role:"manager";
      run 3.0;
      (match Service.validate budget ~client:boss c with
      | Error _ -> say "the foreign scheme retracted 'manager' -> Approve revoked across services"
      | Ok () -> say "unexpected: still valid")
  | None -> ())
