type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_float b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else
    (* %.9f matches the precision the metric/trace exports always used;
       values are simulated seconds, where nanoseconds are plenty. *)
    Buffer.add_string b (Printf.sprintf "%.9f" f)

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_float b f
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  to_buffer b j;
  Buffer.contents b

let rec sorted = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> v
  | Arr items -> Arr (List.map sorted items)
  | Obj fields ->
      Obj
        (List.stable_sort
           (fun (a, _) (b, _) -> String.compare a b)
           (List.map (fun (k, v) -> (k, sorted v)) fields))

let raw_to_buffer = Buffer.add_string

(* --- parsing ---

   A small total recursive-descent parser, added for the model checker's
   replayable counterexample schedules.  It accepts exactly the documents
   the emitter above produces (strict JSON; numbers without a fraction or
   exponent become [Int], all others [Float]); surrogate pairs in string
   escapes are folded into one code point and re-encoded as UTF-8. *)

exception Bad of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else error (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error ("expected " ^ word)
  in
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    match v with
    | None -> error "bad \\u escape"
    | Some v ->
        pos := !pos + 4;
        v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then error "truncated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'u' ->
                   advance ();
                   let cp = hex4 () in
                   let cp =
                     if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n && s.[!pos] = '\\'
                        && s.[!pos + 1] = 'u'
                     then begin
                       pos := !pos + 2;
                       let lo = hex4 () in
                       if lo >= 0xDC00 && lo <= 0xDFFF then
                         0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
                       else error "unpaired surrogate"
                     end
                     else cp
                   in
                   add_utf8 b cp
               | c -> error (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_digit c = c >= '0' && c <= '9' in
    while !pos < n && is_digit s.[!pos] do
      advance ()
    done;
    let fractional = ref false in
    if peek () = Some '.' then begin
      fractional := true;
      advance ();
      while !pos < n && is_digit s.[!pos] do
        advance ()
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        fractional := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        while !pos < n && is_digit s.[!pos] do
          advance ()
        done
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !fractional then
      match float_of_string_opt text with Some f -> Float f | None -> error "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Integer overflowing the native int range: keep it as a float. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> error "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> error "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> error "expected , or ] in array"
          in
          Arr (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing bytes after document";
    v
  with
  | v -> Ok v
  | exception Bad (msg, at) -> Error (Printf.sprintf "json: %s at byte %d" msg at)

(* --- typed accessors --- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr items -> Some items | _ -> None
