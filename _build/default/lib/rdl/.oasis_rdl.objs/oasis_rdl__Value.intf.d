lib/rdl/value.mli: Format
