(** Pretty printer producing concrete RDL syntax that re-parses to the same
    AST (round-trip property tested in [test/test_rdl.ml]). *)

open Ast

let pp_arg ppf = function
  | Avar v -> Format.pp_print_string ppf v
  | Alit (Value.Obj (ty, id)) -> Format.fprintf ppf "@%s%S" ty id
  | Alit v -> Value.pp ppf v

let pp_args ppf = function
  | [] -> ()
  | args ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_arg)
        args

let pp_role_ref ppf r =
  (match r.sref with
  | { service = Some s; rolefile = Some rf } -> Format.fprintf ppf "%s[%s]." s rf
  | { service = Some s; rolefile = None } -> Format.fprintf ppf "%s." s
  | { service = None; _ } -> ());
  Format.fprintf ppf "%s%a%s" r.role pp_args r.ref_args (if r.starred then "*" else "")

let string_of_relop = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_expr ppf = function
  | Elit (Value.Obj (ty, id)) -> Format.fprintf ppf "@%s%S" ty id
  | Elit v -> Value.pp ppf v
  | Evar v -> Format.pp_print_string ppf v
  | Ecall (name, args) ->
      Format.fprintf ppf "%s(%a)" name
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_expr)
        args

(* Precedence levels: or = 0, and = 1, not/atom = 2.  Parenthesise when a
   lower-precedence construct appears in a higher-precedence position. *)
let rec pp_constr_prec level ppf c =
  let paren needed body =
    if needed then Format.fprintf ppf "(%t)" body else body ppf
  in
  match c with
  | Cor (a, b) ->
      paren (level > 0) (fun ppf ->
          Format.fprintf ppf "%a or %a" (pp_constr_prec 1) a (pp_constr_prec 0) b)
  | Cand (a, b) ->
      paren (level > 1) (fun ppf ->
          Format.fprintf ppf "%a and %a" (pp_constr_prec 2) a (pp_constr_prec 1) b)
  | Cnot c -> Format.fprintf ppf "not %a" (pp_constr_prec 2) c
  | Cstar ((Crel _ | Cin _ | Csubset _ | Ccall _ | Cbind _) as atom) ->
      (* Atoms that a bare trailing star can attach to. *)
      Format.fprintf ppf "%a*" (pp_constr_prec 2) atom
  | Cstar c -> Format.fprintf ppf "(%a)*" (pp_constr_prec 0) c
  | Crel (op, a, b) -> Format.fprintf ppf "%a %s %a" pp_expr a (string_of_relop op) pp_expr b
  | Cin (e, group) -> Format.fprintf ppf "%a in %s" pp_expr e group
  | Csubset (a, b) -> Format.fprintf ppf "%a subset %a" pp_expr a pp_expr b
  | Ccall (name, args) -> pp_expr ppf (Ecall (name, args))
  | Cbind (x, e) -> Format.fprintf ppf "%s <- %a" x pp_expr e

let pp_constr = pp_constr_prec 0

let pp_entry ppf e =
  let name, args = e.head in
  Format.fprintf ppf "%s%a <- " name pp_args args;
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " /\\ ")
    pp_role_ref ppf e.creds;
  (match e.elector with
  | Some r ->
      Format.fprintf ppf "%s<|%s %a"
        (if e.creds = [] then "" else " ")
        (if e.elect_starred then "*" else "")
        pp_role_ref r
  | None -> ());
  (match e.revoker with
  | Some r ->
      Format.fprintf ppf "%s|>* %a" (if e.creds = [] && e.elector = None then "" else " ") pp_role_ref r
  | None -> ());
  match e.constr with
  | Some c -> Format.fprintf ppf " : %a" pp_constr c
  | None -> ()

let pp_item ppf = function
  | Import { service; tyname; _ } -> Format.fprintf ppf "import %s.%s" service tyname
  | Def d ->
      Format.fprintf ppf "def %s(%s)" d.decl_name (String.concat ", " d.params);
      List.iter (fun (p, ty) -> Format.fprintf ppf " %s: %a" p Ty.pp ty) d.param_types
  | Entry e -> pp_entry ppf e

let pp_rolefile ppf rolefile =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_item ppf rolefile

let to_string rolefile = Format.asprintf "%a" pp_rolefile rolefile
let entry_to_string e = Format.asprintf "%a" pp_entry e
let constr_to_string c = Format.asprintf "%a" pp_constr c
