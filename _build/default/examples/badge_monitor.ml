(* The Active Badge system end to end (chapters 6 and 7).

   Three sites run Masters, Sighting Caches and Namers; a synthetic
   workload walks people between rooms and sites.  On top:

   - a composite-event monitor detecting when two specific people are
     together ($Seen(A,R); $Seen(B,R) - Seen(A,Rp));
   - an aggregation program counting sightings per minute;
   - ERDL event security: a user may only register for their own badge.

   Run with: dune exec examples/badge_monitor.exe *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Broker = Oasis_events.Broker
module Broker_io = Oasis_events.Broker_io
module Event = Oasis_events.Event
module Bead = Oasis_events.Bead
module Composite = Oasis_events.Composite
module Aggregate = Oasis_events.Aggregate
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Site = Oasis_badge.Site
module Workload = Oasis_badge.Workload
module V = Oasis_rdl.Value

let say fmt = Printf.printf (fmt ^^ "\n")

let () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) engine in
  let registry = Service.create_registry () in

  (* Three sites, as in the dissertation's Cambridge / ORL / PARC setting. *)
  let sites =
    List.map
      (fun (name, rooms) -> Site.create net registry ~name ~rooms ~heartbeat:0.5 ())
      [
        ("Cambridge", [ "T14"; "T15"; "library"; "machine-room" ]);
        ("ORL", [ "lab1"; "lab2" ]);
        ("PARC", [ "office1"; "office2"; "commons" ]);
      ]
  in
  let cambridge = List.hd sites in
  let workload =
    Workload.create engine ~seed:2026L ~sites ~people_per_site:6 ~mean_dwell:3.0
      ~travel_probability:0.05 ()
  in
  let people = Workload.people workload in
  let alice = List.nth people 0 and bob = List.nth people 1 in
  say "badge world: %d sites, %d people; watching %s (badge %d) and %s (badge %d)"
    (List.length sites) (List.length people) alice.Workload.p_name alice.Workload.p_badge
    bob.Workload.p_name bob.Workload.p_badge;

  (* A monitor host with sessions to every Master. *)
  let monitor = Net.add_host net "monitor" in
  let sessions = ref [] in
  List.iter
    (fun site ->
      Broker.connect net monitor (Site.master site)
        ~on_result:(function Ok s -> sessions := s :: !sessions | Error _ -> ())
        ())
    sites;
  Engine.run ~until:1.0 engine;
  let io = Broker_io.make net monitor !sessions in

  (* Composite event: alice and bob together in a room. *)
  let expr =
    Composite.parse
      (Printf.sprintf "$Seen(%d, R); $Seen(%d, R) - Seen(%d, Rp)" alice.Workload.p_badge
         bob.Workload.p_badge alice.Workload.p_badge)
  in
  let meetings = ref 0 in
  let _ =
    Bead.detect io ~start:1.0 expr ~on_occur:(fun o ->
        incr meetings;
        if !meetings <= 5 then
          say "  [%7.2fs] %s and %s together in %s" o.Bead.at alice.Workload.p_name
            bob.Workload.p_name
            (match List.assoc_opt "R" o.Bead.env with
            | Some (V.Str r) -> r
            | _ -> "?"))
  in

  (* Aggregation: count Cambridge sightings until a Stop event. *)
  let count_prog =
    Aggregate.count_program
      ~expr:(Printf.sprintf "$Master@%s.Seen(b, r)" (Site.name cambridge))
      ~until:(Printf.sprintf "Master@%s.Shutdown()" (Site.name cambridge))
      ~signal:"SightingCount"
  in
  let _ =
    Aggregate.run_program io count_prog ~on_signal:(fun _name args ->
        match args with
        | [ V.Int n ] -> say "aggregation: %d sightings recorded at Cambridge" n
        | _ -> ())
  in

  (* Run the world. *)
  Workload.start workload;
  Engine.run ~until:600.0 engine;
  say "after 10 simulated minutes: %d sightings, %d site changes, %d meetings detected"
    (Workload.sightings workload)
    (Workload.site_changes workload)
    !meetings;
  ignore (Broker.signal (Site.master cambridge) "Shutdown" []);
  Engine.run ~until:605.0 engine;

  (* --------------------------------------------------------------- *)
  say "\n--- event security (ch. 7) ---";
  (* A Namer-backed OASIS service certifies badge ownership; ERDL policy on
     the Cambridge Master lets a user see only their own badge. *)
  let nsvc =
    Result.get_ok
      (Service.create net (Net.add_host net "namer-svc") registry ~name:"Namer"
         ~rolefile:{|
def OwnsBadge(u, b) u: String b: Integer
OwnsBadge(u, b) <-
|} ())
  in
  let rules =
    Result.get_ok (Oasis_esec.Erdl.parse "allow Namer.OwnsBadge(u, b) : Seen(b, *)")
  in
  Oasis_esec.Policy.install (Site.master cambridge) ~registry ~rules;
  let ph = Principal.Host.create "monitor" in
  let me = Principal.Host.new_vci ph (Principal.Host.boot_domain ph) in
  let my_cert =
    Service.issue_arbitrary nsvc ~client:me ~roles:[ "OwnsBadge" ]
      ~args:[ V.Str alice.Workload.p_name; V.Int alice.Workload.p_badge ]
  in
  let watcher = Net.add_host net "secure-watcher" in
  let mine = ref 0 and others = ref 0 in
  Broker.connect net watcher (Site.master cambridge)
    ~credentials:[ Oasis_esec.Policy.token_of_cert my_cert ]
    ~on_result:(function
      | Ok s ->
          ignore
            (Broker.register s (Event.template "Seen" [ Event.Any; Event.Any ]) (fun e ->
                 if e.Event.params.(0) = V.Int alice.Workload.p_badge then incr mine
                 else incr others))
      | Error e -> say "secure connect failed: %s" e)
    ();
  Engine.run ~until:900.0 engine;
  say "policed monitor (holder of OwnsBadge(%s, %d)): saw %d own sightings, %d others"
    alice.Workload.p_name alice.Workload.p_badge !mine !others;
  say "the registration was narrowed by ERDL before any monitoring happened (§7.4)"
