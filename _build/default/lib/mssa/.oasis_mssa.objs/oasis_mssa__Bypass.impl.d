lib/mssa/bypass.ml: Custode Format Hashtbl Oasis_core Oasis_sim Vac
