(** Imperative binary-heap priority queue, keyed by float priority with an
    insertion sequence number for stable FIFO tie-breaking.

    Used by the simulator's event loop and by the aggregation service's
    two-section queue (fig 6.6). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q priority v] inserts [v]. Lower priorities pop first; equal
    priorities pop in insertion order. *)

val pop : 'a t -> (float * 'a) option
val peek : 'a t -> (float * 'a) option

val to_list : 'a t -> (float * 'a) list
(** Non-destructive snapshot in pop order (O(n log n)). *)

val entries : 'a t -> (float * int * 'a) list
(** Like {!to_list} but exposing each entry's insertion sequence number.
    Sequence numbers are unique for the lifetime of the queue, so they
    identify a queued entry stably across {!to_list} snapshots — the model
    checker uses them to name pending simulator events. *)

val remove_seq : 'a t -> int -> (float * 'a) option
(** Remove and return the entry with the given insertion sequence, or
    [None] when no such entry is queued.  O(n) scan plus O(log n) repair;
    only the model checker's single-step scheduler uses it, on the small
    queues of bounded scenarios. *)
