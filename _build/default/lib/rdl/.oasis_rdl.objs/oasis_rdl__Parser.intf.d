lib/rdl/parser.mli: Ast Value
