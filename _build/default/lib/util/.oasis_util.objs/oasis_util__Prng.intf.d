lib/util/prng.mli:
