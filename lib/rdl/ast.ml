(** Abstract syntax of RDL rolefiles (ch. 3).

    Concrete syntax used by the lexer/parser (ASCII renderings of the paper's
    symbols):

    {v
    rolefile  ::= item*
    item      ::= "import" IDENT "." IDENT
                | "def" IDENT "(" IDENT ("," IDENT)* ")" (IDENT ":" type)*
                | entry
    type      ::= "Integer" | "String" | "{" chars "}" | IDENT
    entry     ::= head "<-" [creds] [elect] [revoke] [":" constr]
    head      ::= IDENT ["(" arg ("," arg)* ")"]
    creds     ::= roleref ((wedge | "&&") roleref)*    -- wedge is slash-backslash
    roleref   ::= [IDENT ["[" IDENT "]"] "."] IDENT ["(" args ")"] ["*"]
    elect     ::= "<|" ["*"] roleref          -- the paper's ◁ (election)
    revoke    ::= "|>" ["*"] roleref          -- the paper's ▷ (role-based revocation)
    arg       ::= literal | IDENT
    literal   ::= INT | STRING | "{" chars "}" | "@" IDENT STRING
    constr    ::= or-expression over atoms; atoms may carry a "*" membership
                  annotation; see {!constr}
    v}

    The ["*"] annotations mark {e membership rules}: entry conditions whose
    continued validity is required for the lifetime of the certificate
    (§3.2.3). *)

type arg = Avar of string | Alit of Value.t

(** Reference to the service (and optionally the rolefile within it) that
    issues a role.  [service = None] means the local rolefile. *)
type service_ref = { service : string option; rolefile : string option }

let local_service = { service = None; rolefile = None }

type role_ref = {
  sref : service_ref;
  role : string;
  ref_args : arg list;
  starred : bool;  (** membership rule: revoke if this credential is revoked *)
}

type relop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Elit of Value.t
  | Evar of string
  | Ecall of string * expr list
      (** Server-specific extension function (§3.3.1), e.g. [unixacl],
          [creator], [acl]. *)

type constr =
  | Cand of constr * constr
  | Cor of constr * constr
  | Cnot of constr
  | Cstar of constr  (** membership-rule annotation on a sub-expression *)
  | Crel of relop * expr * expr
  | Cin of expr * string  (** group membership test: [expr in groupname] *)
  | Csubset of expr * expr
  | Ccall of string * expr list  (** boolean extension function *)
  | Cbind of string * expr
      (** [x <- e]: bind [x] if unbound, otherwise test equality.  [x = e]
          with [x] unbound behaves identically. *)

type entry = {
  head : string * arg list;
  creds : role_ref list;
  elector : role_ref option;  (** election form: candidate needs this elector *)
  elect_starred : bool;  (** [<|*]: revoke when the delegation is revoked *)
  revoker : role_ref option;  (** role-based revocation extension (§3.3.2) *)
  constr : constr option;
  entry_line : int;  (** source line of the head (0 when synthesised) *)
}

type decl = {
  decl_name : string;
  params : string list;
  param_types : (string * Ty.t) list;
  decl_line : int;  (** source line of the [def] (0 when synthesised) *)
}

type item =
  | Import of { line : int; service : string; tyname : string }
  | Def of decl
  | Entry of entry

type rolefile = item list

let item_line = function
  | Import { line; _ } -> line
  | Def d -> d.decl_line
  | Entry e -> e.entry_line

(** Zero every source-line annotation.  Line numbers are positional metadata,
    not syntax: two rolefiles that print identically parse to ASTs differing
    only in lines, so structural comparisons (e.g. the pretty round-trip
    property) compare [strip_lines] images. *)
let strip_lines rolefile =
  List.map
    (function
      | Import i -> Import { i with line = 0 }
      | Def d -> Def { d with decl_line = 0 }
      | Entry e -> Entry { e with entry_line = 0 })
    rolefile

let entries rolefile =
  List.filter_map (function Entry e -> Some e | Import _ | Def _ -> None) rolefile

let defs rolefile =
  List.filter_map (function Def d -> Some d | Import _ | Entry _ -> None) rolefile

let imports rolefile =
  List.filter_map
    (function Import { service; tyname; _ } -> Some (service, tyname) | Def _ | Entry _ -> None)
    rolefile

(** All role names defined (by entry statements) in the file, in first
    occurrence order. *)
let defined_roles rolefile =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (function
      | Entry { head = name, _; _ } when not (Hashtbl.mem seen name) ->
          Hashtbl.add seen name ();
          Some name
      | Entry _ | Import _ | Def _ -> None)
    rolefile

(* Accumulator-based traversals: results are built consed-then-reversed (no
   quadratic list append on deep constraints) and deduplicated, preserving
   first-occurrence order. *)

let add_var seen acc v =
  if Hashtbl.mem seen v then acc
  else begin
    Hashtbl.add seen v ();
    v :: acc
  end

let rec expr_vars_acc seen acc = function
  | Elit _ -> acc
  | Evar v -> add_var seen acc v
  | Ecall (_, args) -> List.fold_left (expr_vars_acc seen) acc args

let rec constr_vars_acc seen acc = function
  | Cand (a, b) | Cor (a, b) -> constr_vars_acc seen (constr_vars_acc seen acc a) b
  | Cnot c | Cstar c -> constr_vars_acc seen acc c
  | Crel (_, a, b) | Csubset (a, b) -> expr_vars_acc seen (expr_vars_acc seen acc a) b
  | Cin (e, _) -> expr_vars_acc seen acc e
  | Ccall (_, args) -> List.fold_left (expr_vars_acc seen) acc args
  | Cbind (x, e) -> expr_vars_acc seen (add_var seen acc x) e

(** Distinct variables appearing in an expression, in order of first
    occurrence. *)
let expr_vars e = List.rev (expr_vars_acc (Hashtbl.create 8) [] e)

(** Distinct variables appearing in a constraint (including bind targets), in
    order of first occurrence. *)
let constr_vars c = List.rev (constr_vars_acc (Hashtbl.create 8) [] c)
