(** The deterministic discrete-event backend — [lib/sim]/[lib/store]
    packaged behind the {!Backend.S} signature.

    This is a pure repackaging of the pre-backend construction idiom
    ([Engine.create] / [Net.create] / [Disk.create]); semantics are
    byte-identical, which the sim-ordering regression in
    [test/test_backend.ml] (replaying a persisted model-checking schedule)
    pins down. *)

val create :
  ?seed:int64 ->
  ?latency:Oasis_sim.Net.latency ->
  ?fsync_latency:float ->
  ?write_bandwidth:float ->
  ?read_bandwidth:float ->
  unit ->
  Backend.t
(** Defaults are exactly {!Oasis_sim.Net.create}'s and
    {!Oasis_store.Disk.create}'s.  {!Backend.S.disk} memoizes one device
    per host. *)
