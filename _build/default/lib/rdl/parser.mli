(** Recursive-descent parser for RDL (grammar in {!Ast}). *)

exception Parse_error of string * int  (** message, line *)

val parse :
  ?resolve_literal:(string -> Value.t option) ->
  string ->
  Ast.rolefile
(** Parse a rolefile from source text.

    [resolve_literal] is the table of parse functions consulted for object
    literals written as bare identifiers (§3.2.1): an identifier in argument
    or expression position that the table maps to a value is read as that
    literal (e.g. [DOC] in the shared-authorship example); otherwise it is a
    variable.  Literals may also be written explicitly as [@typename"id"].

    Raises {!Parse_error} or {!Lexer.Lex_error} on malformed input. *)

val parse_result :
  ?resolve_literal:(string -> Value.t option) ->
  string ->
  (Ast.rolefile, string) result
