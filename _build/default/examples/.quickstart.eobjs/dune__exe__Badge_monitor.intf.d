examples/badge_monitor.mli:
