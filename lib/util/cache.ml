(* Two-generation capped cache.

   Inserts land in the [young] generation; when [young] fills up to half the
   cap the [old] generation is dropped and the generations rotate, so the
   table never holds more than [cap] entries and recently-touched entries
   survive a rotation (lookups promote old hits into [young]).  This is the
   classic "2Q-lite" scheme: eviction is O(1) amortised and needs no
   per-entry bookkeeping, which is all the hot paths here (signature cache,
   compiled-residual cache) require. *)

type ('k, 'v) t = {
  cap : int;  (* total bound: young + old <= cap *)
  half : int;
  mutable young : ('k, 'v) Hashtbl.t;
  mutable old : ('k, 'v) Hashtbl.t;
}

let create cap =
  if cap < 2 then invalid_arg "Cache.create: cap must be >= 2";
  let half = max 1 (cap / 2) in
  { cap; half; young = Hashtbl.create half; old = Hashtbl.create half }

let rotate t =
  let drop = t.old in
  t.old <- t.young;
  Hashtbl.reset drop;
  t.young <- drop

let set t k v =
  if not (Hashtbl.mem t.young k) && Hashtbl.length t.young >= t.half then rotate t;
  Hashtbl.replace t.young k v

let find t k =
  match Hashtbl.find_opt t.young k with
  | Some _ as hit -> hit
  | None -> (
      match Hashtbl.find_opt t.old k with
      | Some v ->
          (* Promote: a re-touched entry should survive the next rotation. *)
          Hashtbl.remove t.old k;
          set t k v;
          Some v
      | None -> None)

let mem t k = Hashtbl.mem t.young k || Hashtbl.mem t.old k

let length t = Hashtbl.length t.young + Hashtbl.length t.old

let capacity t = t.cap

let clear t =
  Hashtbl.reset t.young;
  Hashtbl.reset t.old
