lib/mssa/types.ml: Format String
