lib/rdl/ast.ml: Hashtbl List Ty Value
