lib/events/broker.ml: Event Hashtbl Int List Oasis_sim Option Queue
