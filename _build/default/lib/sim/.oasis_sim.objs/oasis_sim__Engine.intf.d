lib/sim/engine.mli:
