(** A file custode with shared ACLs (§5.2–5.5).

    Files are grouped for access control by {e shared ACLs} (§5.4): each ACL
    is itself a file with a meaningful name, protecting a set of files; an
    ACL is protected by a second ACL, subject to the placement constraint of
    §5.4.2 — {b the ACL file protecting an ACL file must reside in the same
    custode} — which bounds access checks to at most one remote call and
    tames cyclic meta-ACL structures (figs 5.4/5.5).

    Enforcement is by OASIS role membership certificates (§5.5):
    [UseAcl(acl, rights)] covers every file under the ACL;
    [UseFile(file, rights)] is file-specific and used for per-file
    delegation (§5.4.3).  Each ACL has a credential record representing the
    validity of certificates issued from its current contents; modifying the
    ACL invalidates the record, revoking those certificates through the
    standard machinery ({e volatile ACLs}, §5.5.2). *)

type t

type value = Oasis_rdl.Value.t

val create :
  Oasis_sim.Net.t ->
  Oasis_sim.Net.host ->
  Oasis_core.Service.registry ->
  name:string ->
  ?admins:string list ->
  ?backing:Byte_segment.t ->
  unit ->
  (t, string) result
(** [admins] seeds the custode's bootstrap ["system"] ACL (which protects
    itself, a legal local cycle).  With [backing], file contents live in
    segments of the byte-segment custode, accessed with the custode's own
    [Segment] certificate. *)

val name : t -> string
val service : t -> Oasis_core.Service.t
val host : t -> Oasis_sim.Net.host
val net : t -> Oasis_sim.Net.t

(** {1 ACL management (§5.4)} *)

val create_acl :
  t -> cert:Oasis_core.Cert.rmc -> id:string -> entries:string -> meta:string ->
  (unit, string) result
(** Create a shared ACL named [id], protected by the (local) ACL [meta];
    requires the ['a'] right on [meta].  [entries] uses {!Oasis_core.Acl}
    syntax. *)

val modify_acl :
  t -> cert:Oasis_core.Cert.rmc -> id:string -> entries:string -> (unit, string) result
(** Replace the ACL's entries; requires ['a'] on its meta ACL.  Invalidates
    the ACL's credential record: every certificate issued under the old
    contents is revoked (§5.5.2). *)

val read_acl : t -> cert:Oasis_core.Cert.rmc -> id:string -> (string, string) result
val acl_record : t -> string -> Oasis_core.Credrec.cref option
val acl_count : t -> int

(** {1 Access requests} *)

val request_access :
  t ->
  client_host:Oasis_sim.Net.host ->
  client:Oasis_core.Principal.vci ->
  login:Oasis_core.Cert.rmc ->
  acl:string ->
  ((Oasis_core.Cert.rmc, string) result -> unit) ->
  unit
(** Obtain a [UseAcl(acl, rights)] certificate.  The login certificate is
    validated with its issuing service over the network; the issued
    certificate's credential record conjoins the (external) login record,
    the ACL's volatility record, and the group memberships the grant
    actually depended on — any of them failing revokes the certificate. *)

val delegate_file_access :
  t ->
  client_host:Oasis_sim.Net.host ->
  holder:Oasis_core.Cert.rmc ->
  file:int ->
  rights:string ->
  candidate:Oasis_core.Principal.vci ->
  ?expires_in:float ->
  unit ->
  ((Oasis_core.Cert.rmc * Oasis_core.Cert.revocation, string) result -> unit) ->
  unit
(** A [UseAcl] holder delegates access to one file: issues the candidate a
    [UseFile(file, rights)] certificate (rights must be a subset of the
    holder's) plus a revocation certificate for the delegator (§5.4.3).
    The delegated certificate survives the delegator re-entering or
    refreshing their own certificate, but dies with the delegation record
    or the ACL (§5.5.2). *)

(** {1 File operations (server-side; remote invocation lives in {!Vac})} *)

val create_file :
  t -> cert:Oasis_core.Cert.rmc -> acl:string -> ?container:string ->
  ?kind:Types.kind -> unit -> (int, string) result
(** Requires ['w'] on [acl]; the new file is protected by [acl]. *)

val read_file : t -> cert:Oasis_core.Cert.rmc -> file:int -> (string, string) result
val write_file : t -> cert:Oasis_core.Cert.rmc -> file:int -> string -> (unit, string) result
val delete_file : t -> cert:Oasis_core.Cert.rmc -> file:int -> (unit, string) result

val stat_file : t -> cert:Oasis_core.Cert.rmc -> file:int -> (string * Types.kind, string) result
(** Returns (protecting ACL id, kind); requires ['r']. *)

(** {1 Continuous media (§5.3.1)}

    Continuous-medium files do not fit generic read/write semantics: their
    protected operations are [play] and [record], mapped onto the ['r'] and
    ['w'] rights of the protecting ACL but refused on non-continuous
    files. *)

val play_file : t -> cert:Oasis_core.Cert.rmc -> file:int -> (string, string) result
val record_file : t -> cert:Oasis_core.Cert.rmc -> file:int -> string -> (unit, string) result

(** {1 Structured files (§5.3.1)} *)

val add_child :
  t -> cert:Oasis_core.Cert.rmc -> file:int -> Types.file_ref -> (unit, string) result
val children : t -> cert:Oasis_core.Cert.rmc -> file:int -> (Types.file_ref list, string) result

(** {1 Containers (accounting, §5.3.1)} *)

val container_usage : t -> string -> int * int
(** (files, bytes) accounted to the container. *)

val file_count : t -> int
val file_acl : t -> int -> string option
