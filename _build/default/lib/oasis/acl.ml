type subject = User of string | Group of string | Other

type entry = { negative : bool; subject : subject; rights : string }

type t = entry list

let sort_rights s =
  let chars = List.init (String.length s) (String.get s) in
  let sorted = List.sort_uniq Char.compare chars in
  String.init (List.length sorted) (List.nth sorted)

let parse src =
  let words =
    String.split_on_char ' ' src
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  in
  let parse_entry w =
    let negative, body =
      if String.length w > 0 && w.[0] = '-' then (true, String.sub w 1 (String.length w - 1))
      else if String.length w > 0 && w.[0] = '+' then (false, String.sub w 1 (String.length w - 1))
      else (false, w)
    in
    match String.index_opt body '=' with
    | None -> Error (Printf.sprintf "malformed ACL entry %S (no '=')" w)
    | Some eq ->
        let subject_text = String.sub body 0 eq in
        let rights = String.sub body (eq + 1) (String.length body - eq - 1) in
        let rights = String.concat "" (String.split_on_char '-' rights) in
        let subject =
          if String.equal subject_text "other" then Other
          else if String.length subject_text > 0 && subject_text.[0] = '%' then
            Group (String.sub subject_text 1 (String.length subject_text - 1))
          else User subject_text
        in
        Ok { negative; subject; rights = sort_rights rights }
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | w :: rest -> ( match parse_entry w with Ok e -> go (e :: acc) rest | Error _ as e -> e)
  in
  go [] words

let to_string entries =
  String.concat " "
    (List.map
       (fun e ->
         Printf.sprintf "%s%s=%s"
           (if e.negative then "-" else "+")
           (match e.subject with User u -> u | Group g -> "%" ^ g | Other -> "other")
           e.rights)
       entries)

let subject_matches ~user ~in_group = function
  | User u -> String.equal u user
  | Group g -> in_group g
  | Other -> true

let set_minus a b = String.concat "" (List.filter_map (fun c ->
    if String.contains b c then None else Some (String.make 1 c))
    (List.init (String.length a) (String.get a)))

let set_inter a b = String.concat "" (List.filter_map (fun c ->
    if String.contains b c then Some (String.make 1 c) else None)
    (List.init (String.length a) (String.get a)))

let set_union a b = sort_rights (a ^ b)

let rights entries ~user ~in_group ~full =
  (* G starts empty, P starts full; entries are applied in order (§5.4.4). *)
  let granted = ref "" in
  let possible = ref (sort_rights full) in
  List.iter
    (fun e ->
      if subject_matches ~user ~in_group e.subject then
        if e.negative then possible := set_minus !possible e.rights
        else granted := set_union !granted (set_inter !possible e.rights))
    entries;
  sort_rights !granted

let unixacl src ~user ~in_group =
  match parse src with
  | Error _ -> ""
  | Ok entries ->
      (* Unix-style most-closely-binding: exact user entry wins; otherwise
         union of matching "group" entries (plain subjects other than the
         user are treated as group names here, matching the paper's
         "rjh21=rwx staff=rx other=r" examples); otherwise [other]. *)
      let user_entry =
        List.find_opt (fun e -> match e.subject with User u -> String.equal u user | _ -> false)
      in
      let as_group e =
        match e.subject with
        | User g -> if in_group g then Some e.rights else None
        | Group g -> if in_group g then Some e.rights else None
        | Other -> None
      in
      (match user_entry entries with
      | Some e -> e.rights
      | None -> (
          let group_rights = List.filter_map as_group entries in
          match group_rights with
          | _ :: _ -> sort_rights (String.concat "" group_rights)
          | [] -> (
              match List.find_opt (fun e -> e.subject = Other) entries with
              | Some e -> e.rights
              | None -> "")))

let groups_mentioned entries =
  List.filter_map (function { subject = Group g; _ } -> Some g | _ -> None) entries
  |> List.sort_uniq String.compare

let to_rdl ?(role = "UseAcl") ?(cred = "Login.LoggedOn") ~full entries =
  Printf.sprintf "%s(r) <- %s(u) : r = acl(\"%s\", \"%s\", u)" role cred (to_string entries) full
