(** Simulated network: hosts, latency, loss, partitions and RPC.

    Messages are modelled as delayed closures executed "at" the destination;
    the network charges latency, applies loss and partitions, and accounts
    traffic per category in {!Stats}. *)

type t

type latency =
  | Fixed of float
  | Uniform of float * float  (** [lo, hi) *)
  | Exponential of float  (** mean, shifted by a 1ms floor *)

type host

val create : ?seed:int64 -> ?latency:latency -> Engine.t -> t
val engine : t -> Engine.t
val stats : t -> Stats.t
val prng : t -> Oasis_util.Prng.t

val add_host : t -> ?clock_rate:float -> ?clock_offset:float -> string -> host
val host_name : host -> string
val host_clock : host -> Clock.t
val host_addr : host -> int
val find_host : t -> string -> host option

val set_default_latency : t -> latency -> unit

val set_link_latency : t -> host -> host -> latency -> unit
(** Override latency on the directed link from the first host to the second. *)

val set_loss : t -> float -> unit
(** Probability in [\[0,1\]] that any message is silently dropped. *)

val partition : t -> host -> host -> unit
(** Block traffic in both directions between the two hosts. *)

val heal : t -> host -> host -> unit

val send : t -> ?category:string -> ?size:int -> src:host -> dst:host -> (unit -> unit) -> unit
(** One-way message: the closure runs at the destination after link latency,
    unless lost or partitioned. *)

val rpc :
  t ->
  ?category:string ->
  ?size:int ->
  ?timeout:float ->
  src:host ->
  dst:host ->
  (unit -> ('a, string) result) ->
  (('a, string) result -> unit) ->
  unit
(** Request/response: runs the handler at [dst] after one latency, delivers
    its result back to [src] after another.  If either leg is lost or the
    hosts are partitioned, the continuation receives [Error "timeout"] after
    [timeout] seconds (default 2.0). *)

val local_call : t -> ?category:string -> (unit -> 'a) -> 'a
(** Same-host invocation: zero latency, still accounted. *)
