lib/oasis/credrec.ml: Array Format List Printf String
