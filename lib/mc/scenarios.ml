(* The built-in scenarios: the paper's two membership narratives as
   explorable specs, plus a deliberately planted protocol bug that only an
   adversarial schedule can reach.

   Times are chosen so that setup (issues and entries) completes well before
   the branching window opens, and actions after the window are strictly
   ordered (each completes, at simulated RTTs, before the next fires) — so
   the conditional expectations stay decidable from the completion marks
   alone. *)

module Net = Oasis_sim.Net
module Broker = Oasis_events.Broker
module Event = Oasis_events.Event
module Service = Oasis_core.Service
module Shard = Oasis_core.Shard
module V = Oasis_rdl.Value
open Scenario

let login_rolefile = {|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
|}

(* --- the golf club (§3.2.2, §4.11) --- *)

(* Members enter on the Secretary's say-so (their LoggedOn credential plus
   the staff list); the Chair can fire a member ([|>*] role-based
   revocation, which blacklists the instance) and later re-hire them.  The
   club's state is durable; its host crashes just after a firing, while the
   revocation cascade, WAL group commit and broker deliveries are all still
   in flight.  Every interleaving must preserve: no re-entry while fired,
   fired-stays-fired across the recovery, convergence to the expected
   memberships, and equality with the crash-free twin run. *)

let club_rolefile =
  {|
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* |>* Chair : u in staff
|}

let golf_club =
  {
    sc_name = "golf-club";
    sc_services =
      [
        svc "Login" login_rolefile;
        svc "Club" club_rolefile ~durable:true ~groups:[ ("staff", [ "alice"; "bob" ]) ];
      ];
    sc_principals = [ "jmb"; "alice"; "bob" ];
    sc_actions =
      [
        step ~at:0.10 "issue-jmb" (Issue { service = "Login"; who = "jmb" });
        step ~at:0.12 "issue-alice" (Issue { service = "Login"; who = "alice" });
        step ~at:0.14 "issue-bob" (Issue { service = "Login"; who = "bob" });
        step ~at:0.30 "enter-chair" (Enter { who = "jmb"; service = "Club"; role = "Chair" });
        step ~at:0.60 "enter-alice" (Enter { who = "alice"; service = "Club"; role = "Member" });
        step ~at:0.80 "enter-bob" (Enter { who = "bob"; service = "Club"; role = "Member" });
        step ~at:2.00 "fire-alice"
          (Fire { by = "jmb"; service = "Club"; role = "Member"; arg = "alice" });
        step ~at:2.06 "crash-club" (Crash { host = "h.Club" });
        step ~at:2.40 "restart-club" (Restart { host = "h.Club" });
        step ~at:3.50 "reenter-alice" (Enter { who = "alice"; service = "Club"; role = "Member" });
        step ~at:4.20 "fire-bob"
          (Fire { by = "jmb"; service = "Club"; role = "Member"; arg = "bob" });
        step ~at:4.60 "rehire-bob"
          (Rehire { by = "jmb"; service = "Club"; role = "Member"; arg = "bob" });
        step ~at:5.00 "reenter-bob" (Enter { who = "bob"; service = "Club"; role = "Member" });
      ];
    sc_expect =
      (fun ~done_ ->
        [
          ("jmb", "Club.Chair", if done_ "enter-chair" then Valid else Absent);
          ( "alice",
            "Club.Member",
            (* reenter-alice only commits when the firing never did *)
            if done_ "reenter-alice" then Valid
            else if done_ "fire-alice" then Revoked
            else if done_ "enter-alice" then Valid
            else Absent );
          ( "bob",
            "Club.Member",
            if done_ "reenter-bob" then Valid
            else if done_ "fire-bob" then Revoked
            else if done_ "enter-bob" then Valid
            else Absent );
        ]);
    sc_invariants = [ No_reentry_without_rehire; Fired_stays_fired; Converges; Crash_equiv ];
    sc_horizon = 7.0;
    sc_window = (1.95, 2.55);
    sc_latency = Net.Fixed 0.005;
    sc_seed = 11L;
    sc_custom = None;
  }

(* --- the MSSA ward (§5) --- *)

(* The hospital flavour: an admissions service authenticates staff, the
   records service grants Doctor to authenticated staff on the wards list,
   and a custos can strike a doctor off (fire).  The fault here is a
   network partition between the two services — opened just as a doctor
   logs off, so the revocation cascade is trapped behind it — healed
   shortly after.  Every interleaving must converge within the heartbeat
   bound after the heal, and the §4.11 discipline must hold for the
   struck-off doctor. *)

let records_rolefile =
  {|
Custos <- Admin.LoggedOn("custos", h)
Doctor(u) <- Admin.LoggedOn(u, h)* |>* Custos : u in doctors
|}

let mssa =
  {
    sc_name = "mssa";
    sc_services =
      [
        svc "Admin" login_rolefile;
        svc "Records" records_rolefile ~groups:[ ("doctors", [ "day"; "night" ]) ];
      ];
    sc_principals = [ "custos"; "day"; "night" ];
    sc_actions =
      [
        step ~at:0.10 "issue-custos" (Issue { service = "Admin"; who = "custos" });
        step ~at:0.12 "issue-day" (Issue { service = "Admin"; who = "day" });
        step ~at:0.14 "issue-night" (Issue { service = "Admin"; who = "night" });
        step ~at:0.30 "enter-custos" (Enter { who = "custos"; service = "Records"; role = "Custos" });
        step ~at:0.60 "enter-day" (Enter { who = "day"; service = "Records"; role = "Doctor" });
        step ~at:0.80 "enter-night" (Enter { who = "night"; service = "Records"; role = "Doctor" });
        step ~at:2.00 "partition" (Partition { a = "h.Admin"; b = "h.Records" });
        step ~at:2.05 "logoff-day" (Logoff { service = "Admin"; who = "day" });
        step ~at:2.10 "fire-night"
          (Fire { by = "custos"; service = "Records"; role = "Doctor"; arg = "night" });
        step ~at:2.60 "heal" (Heal { a = "h.Admin"; b = "h.Records" });
        step ~at:3.80 "reenter-night"
          (Enter { who = "night"; service = "Records"; role = "Doctor" });
      ];
    sc_expect =
      (fun ~done_ ->
        [
          ("custos", "Records.Custos", if done_ "enter-custos" then Valid else Absent);
          ( "day",
            "Records.Doctor",
            if done_ "logoff-day" then Revoked
            else if done_ "enter-day" then Valid
            else Absent );
          ( "night",
            "Records.Doctor",
            if done_ "reenter-night" then Valid
            else if done_ "fire-night" then Revoked
            else if done_ "enter-night" then Valid
            else Absent );
        ]);
    sc_invariants = [ No_reentry_without_rehire; Fired_stays_fired; Converges ];
    sc_horizon = 6.5;
    sc_window = (1.95, 2.7);
    sc_latency = Net.Fixed 0.005;
    sc_seed = 23L;
    sc_custom = None;
  }

(* --- the planted bug: a door that forgets to look back --- *)

(* A badge broker signals [Revoked(u)]; an access-control door caches badge
   validity in its (simulated) NVRAM.  The door's client code has a real,
   deliberately planted protocol bug: after its host restarts it reconnects
   and re-registers {e live-only} — it does not pass [~since] its last safe
   horizon, so anything signalled in the gap is silently lost even though
   the broker retained it.

   The gap is unreachable by seed sweeps: the revocation is signalled at
   t=2.0 with delivery latency in [5 ms, 20 ms), and the door crashes at
   t=2.05 — under default scheduling the delivery always lands first, for
   every seed.  Only an adversarial schedule that pulls the crash (or the
   restart-side registration) ahead of the delivery exposes the loss. *)

let planted =
  {
    sc_name = "planted";
    sc_services = [];
    sc_principals = [];
    sc_actions =
      [
        step ~at:2.00 "revoke-alice"
          (Act (fun w -> ignore (Broker.signal (List.assoc "badges" w.w_brokers) "Revoked" [ V.Str "alice" ])));
        step ~at:2.05 "crash-door" (Crash { host = "h.door" });
        step ~at:2.35 "restart-door" (Restart { host = "h.door" });
      ];
    sc_expect = (fun ~done_:_ -> []);
    sc_invariants =
      [
        Custom_final
          ( "lost-revocation",
            fun w ->
              if Hashtbl.find_opt w.w_box "badge.alice" = Some "revoked" then Ok ()
              else
                Error
                  "alice's badge revocation never reached the door: it was signalled \
                   and retained, but the door re-registered live-only after its crash" );
      ];
    sc_horizon = 5.0;
    sc_window = (1.97, 2.45);
    sc_latency = Net.Uniform (0.005, 0.02);
    sc_seed = 5L;
    sc_custom =
      Some
        (fun w ->
          let net = w.w_net in
          let gate_host = Net.add_host net "h.gate" in
          let door_host = Net.add_host net "h.door" in
          w.w_hosts <- ("h.gate", gate_host) :: ("h.door", door_host) :: w.w_hosts;
          let srv = Broker.create_server net gate_host ~name:"badges" () in
          w.w_brokers <- ("badges", srv) :: w.w_brokers;
          Hashtbl.replace w.w_box "badge.alice" "valid";
          let session = ref None in
          (* Track the session so the crash hook can drop it; the buggy
             restart path below reconnects without ~since. *)
          let connect_tracking ~since =
            Broker.connect net door_host srv
              ~on_result:(fun r ->
                match r with
                | Error _ -> ()
                | Ok s ->
                    session := Some s;
                    Hashtbl.replace w.w_box "door.session" "up";
                    ignore
                      (Broker.register s ?since
                         (Event.template "Revoked" [ Event.Any ])
                         (fun ev ->
                           match ev.Event.params.(0) with
                           | V.Str u -> Hashtbl.replace w.w_box ("badge." ^ u) "revoked"
                           | _ -> ())))
              ()
          in
          connect_tracking ~since:None;
          Net.on_crash net door_host (fun () ->
              (match !session with Some s -> Broker.close s | None -> ());
              session := None;
              Hashtbl.replace w.w_box "door.session" "down");
          Net.on_restart net door_host (fun () ->
              (* THE PLANTED BUG: should be ~since:(last safe horizon). *)
              connect_tracking ~since:None));
  }

(* --- a firing that crosses a shard boundary (§4.9.1, §4.10, §4.11) --- *)

(* The club again, but instance-sharded: two durable shard services behind
   a router (built by [Shard.create] in [sc_custom]; actions address the
   shards directly, so record placement is explicit rather than
   ring-derived).  Alice's Member lives on shard 0, her Editor — derived
   from the Member credential across the shard boundary, so shard 1 holds
   an external surrogate of shard 0's member record — on shard 1.  The
   Chair fires the Member; while the revocation cascade, the cross-shard
   ModifiedBatch digest, the WAL group commit and the ack are all in
   flight, the owning shard crashes.  Every interleaving must preserve the
   §4.11 discipline on both shards, converge after recovery (the §4.10
   reread heals the surrogate), and match the crash-free twin. *)

let sharded_club_rolefile =
  {|
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* |>* Chair : u in staff
Editor(u) <- Member(u)* |>* Chair
|}

let cross_shard_fire =
  {
    sc_name = "cross-shard-fire";
    sc_services = [ svc "Login" login_rolefile ];
    sc_principals = [ "jmb"; "alice" ];
    sc_actions =
      [
        step ~at:0.10 "issue-jmb" (Issue { service = "Login"; who = "jmb" });
        step ~at:0.12 "issue-alice" (Issue { service = "Login"; who = "alice" });
        step ~at:0.30 "enter-chair" (Enter { who = "jmb"; service = "Club#0"; role = "Chair" });
        step ~at:0.60 "enter-member" (Enter { who = "alice"; service = "Club#0"; role = "Member" });
        step ~at:0.90 "enter-editor"
          (Enter_with
             { who = "alice"; service = "Club#1"; role = "Editor"; use = [ "Club#0.Member" ] });
        step ~at:2.00 "fire-alice"
          (Fire { by = "jmb"; service = "Club#0"; role = "Member"; arg = "alice" });
        step ~at:2.06 "crash-s0" (Crash { host = "h.Club.s0" });
        step ~at:2.40 "restart-s0" (Restart { host = "h.Club.s0" });
        step ~at:3.50 "reenter-member"
          (Enter { who = "alice"; service = "Club#0"; role = "Member" });
      ];
    sc_expect =
      (fun ~done_ ->
        [
          ("jmb", "Club#0.Chair", if done_ "enter-chair" then Valid else Absent);
          ( "alice",
            "Club#0.Member",
            (* reenter-member only commits when the firing never did *)
            if done_ "reenter-member" then Valid
            else if done_ "fire-alice" then Revoked
            else if done_ "enter-member" then Valid
            else Absent );
          ( "alice",
            "Club#1.Editor",
            (* the shard-1 Editor stands or falls with the shard-0 firing *)
            if done_ "enter-editor" then (if done_ "fire-alice" then Revoked else Valid)
            else Absent );
        ]);
    sc_invariants = [ No_reentry_without_rehire; Fired_stays_fired; Converges; Crash_equiv ];
    sc_horizon = 7.0;
    sc_window = (1.95, 2.55);
    sc_latency = Net.Fixed 0.005;
    sc_seed = 31L;
    sc_custom =
      Some
        (fun w ->
          match
            Shard.create w.w_net w.w_reg ~name:"Club" ~rolefile:sharded_club_rolefile ~shards:2
              ~durable:true ~snapshot_every:6
              ~groups:[ ("staff", [ "alice" ]) ]
              ()
          with
          | Error e -> invalid_arg ("cross-shard-fire: " ^ e)
          | Ok sh ->
              let shard_list = Array.to_list (Shard.shards sh) in
              w.w_services <-
                w.w_services @ List.map (fun s -> (Service.name s, s)) shard_list;
              w.w_hosts <-
                w.w_hosts
                @ (("h.Club.router", Shard.router_host sh)
                  :: List.mapi
                       (fun i s -> (Printf.sprintf "h.Club.s%d" i, Service.host s))
                       shard_list));
  }

(* --- a primary crash mid-cascade, absorbed by failover (§4.11 + PR 8) --- *)

(* The replicated club: one shard, K = 3 replicas behind the shard layer's
   primary/backup plane ({!Oasis_core.Replica}).  The Chair fires alice and
   the primary crashes while the revocation cascade, the WAL group commit,
   the log-shipping batches and the quorum ack are all in flight — and it
   {e never restarts}: a backup must win the lease election, adopt the
   majority log and carry the epoch.  Every interleaving must preserve the
   §4.11 discipline across the promotion, converge at the horizon, and —
   whenever the same operations committed — match the crash-free twin
   exactly: a replica crash is not allowed to change any outcome.

   One judgement subtlety is inherent to quorum replication: a fire can
   become durable on a majority (and thus survive into the next epoch)
   while its ack dies with the primary, so "fire-alice completed" is not
   the committed/lost discriminator the golf club uses.  The re-entry
   probe is: alice's final verdict is Valid exactly when her late re-enter
   committed (the firing never took effect anywhere), and Revoked
   otherwise — whichever epoch is answering. *)

let replica_failover =
  {
    sc_name = "replica-failover";
    sc_services = [ svc "Login" login_rolefile ];
    sc_principals = [ "jmb"; "alice" ];
    sc_actions =
      [
        step ~at:0.10 "issue-jmb" (Issue { service = "Login"; who = "jmb" });
        step ~at:0.12 "issue-alice" (Issue { service = "Login"; who = "alice" });
        step ~at:0.30 "enter-chair" (Enter { who = "jmb"; service = "Club#0"; role = "Chair" });
        step ~at:0.60 "enter-member" (Enter { who = "alice"; service = "Club#0"; role = "Member" });
        step ~at:2.00 "fire-alice"
          (Fire { by = "jmb"; service = "Club#0"; role = "Member"; arg = "alice" });
        step ~at:2.06 "crash-primary" (Crash { host = "h.Club.s0" });
        (* No restart: by 3.8 a backup has promoted itself and answers
           under the same service name (on_promote rebinds it below). *)
        step ~at:3.80 "reenter-member"
          (Enter { who = "alice"; service = "Club#0"; role = "Member" });
      ];
    sc_expect =
      (fun ~done_ ->
        [
          ("jmb", "Club#0.Chair", if done_ "enter-chair" then Valid else Absent);
          ( "alice",
            "Club#0.Member",
            (* the re-entry probe: it commits iff the firing never did —
               even a fire that was durable on a majority but never acked
               blocks it at the promoted backup *)
            if done_ "reenter-member" then Valid
            else if done_ "enter-member" then Revoked
            else Absent );
        ]);
    sc_invariants = [ No_reentry_without_rehire; Fired_stays_fired; Converges; Crash_equiv ];
    sc_horizon = 6.0;
    sc_window = (1.95, 2.55);
    sc_latency = Net.Fixed 0.005;
    sc_seed = 47L;
    sc_custom =
      Some
        (fun w ->
          match
            Shard.create w.w_net w.w_reg ~name:"Club" ~rolefile:club_rolefile ~shards:1
              ~durable:true ~snapshot_every:6
              ~groups:[ ("staff", [ "alice" ]) ]
              ~replicas:3 ()
          with
          | Error e -> invalid_arg ("replica-failover: " ^ e)
          | Ok sh ->
              let g = Shard.replica_group sh 0 in
              w.w_services <-
                w.w_services @ [ ("Club#0", Oasis_core.Replica.primary g) ];
              (* A promotion changes which member answers for "Club#0";
                 actions and judgements resolve through w_services, so
                 rebind it — exactly what the registry does for clients. *)
              Oasis_core.Replica.on_promote g (fun svc ->
                  w.w_services <-
                    ("Club#0", svc) :: List.remove_assoc "Club#0" w.w_services);
              w.w_hosts <-
                w.w_hosts
                @ (("h.Club.router", Shard.router_host sh)
                  :: List.mapi
                       (fun j s -> (Printf.sprintf "h.Club.s0%s" (if j = 0 then "" else Printf.sprintf ".r%d" j), Service.host s))
                       (Oasis_core.Replica.members g));
              (* The shard fingerprint folds in epoch, readiness and the
                 per-member stream cursors, so the explorer distinguishes
                 failover states that the service tables alone would merge. *)
              w.w_extra_fp <- (fun () -> Shard.fingerprint sh) :: w.w_extra_fp);
  }

let all = [ golf_club; mssa; planted; cross_shard_fire; replica_failover ]

let find name = List.find_opt (fun s -> s.sc_name = name) all
