(** Minimal JSON emission and parsing (no external dependency in the image).

    The simulator exports metrics ({!Oasis_sim.Stats}), traces
    ({!Oasis_sim.Trace}) and bench snapshots as JSON.  Each of those used to
    carry its own hand-rolled escaper; this module is the single shared
    emitter, so string escaping has exactly one implementation.

    Parsing exists for exactly one consumer: the model checker's replayable
    counterexample schedules ([oasis_cli explore --replay]).  It is a small
    strict recursive-descent parser over the same {!t}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
      (** Rendered with enough digits to round-trip; non-finite values
          (nan/inf) are emitted as [null], since JSON has no spelling for
          them. *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** Escape a string for inclusion between double quotes: the quote and
    backslash characters and control characters (with the common short
    forms for newline, carriage return and tab, [\u00XX] otherwise).
    Does not add the surrounding quotes. *)

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val sorted : t -> t
(** The same document with every object's keys sorted (recursively,
    stable for duplicates).  [Obj] emission otherwise preserves field
    order, so emitters that assemble fields in data-dependent order
    produce byte-different documents run to run; the bench snapshots
    ([BENCH_*.json]) are emitted through this so they diff cleanly. *)

val raw_to_buffer : Buffer.t -> string -> unit
(** Append a pre-rendered JSON fragment verbatim.  For emitters that build
    large documents incrementally around already-serialised parts. *)

val parse : string -> (t, string) result
(** Parse one complete JSON document (strict: no trailing bytes, no
    comments).  Numbers without fraction or exponent parse as [Int]; all
    others as [Float].  Errors carry a byte offset. *)

(** {1 Typed accessors}

    Total helpers for walking parsed documents; each returns [None] on a
    shape mismatch rather than raising. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int] (promoted). *)

val to_str : t -> string option
val to_list : t -> t list option
