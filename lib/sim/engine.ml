type timer = { mutable alive : bool; mutable action : unit -> unit }

type t = { mutable now : float; queue : timer Oasis_util.Pqueue.t }

let create () = { now = 0.0; queue = Oasis_util.Pqueue.create () }

let now t = t.now

let schedule_at t ~at action =
  let at = if at < t.now then t.now else at in
  Oasis_util.Pqueue.push t.queue at { alive = true; action }

let schedule t ~delay action = schedule_at t ~at:(t.now +. delay) action

let timer t ~delay action =
  let at = t.now +. max 0.0 delay in
  let tm = { alive = true; action } in
  Oasis_util.Pqueue.push t.queue at tm;
  tm

let cancel tm =
  tm.alive <- false;
  tm.action <- (fun () -> ())

let cancelled tm = not tm.alive

let every t ~period ?jitter action =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  (* The handle returned to the caller is distinct from the queued one-shot
     timers: cancelling it suppresses all future firings. *)
  let handle = { alive = true; action = (fun () -> ()) } in
  let rec arm () =
    let extra = match jitter with Some j -> j () | None -> 0.0 in
    (* A pathological jitter ([extra <= -period]) must not re-arm at the
       current instant: the timer would fire and re-arm at one sim time
       forever, and [run ~until] would never terminate.  The effective
       delay is clamped to a positive floor instead. *)
    let delay = Float.max (0.001 *. period) (period +. extra) in
    schedule t ~delay (fun () ->
        if handle.alive then begin
          action ();
          if handle.alive then arm ()
        end)
  in
  arm ();
  handle

let step t =
  match Oasis_util.Pqueue.pop t.queue with
  | None -> false
  | Some (at, tm) ->
      t.now <- max t.now at;
      if tm.alive then tm.action ();
      true

let run ?until t =
  let continue = ref true in
  while !continue do
    match Oasis_util.Pqueue.peek t.queue with
    | None ->
        (match until with Some u when u > t.now -> t.now <- u | _ -> ());
        continue := false
    | Some (at, _) -> (
        match until with
        | Some u when at > u ->
            t.now <- u;
            continue := false
        | _ -> ignore (step t))
  done

let pending t = Oasis_util.Pqueue.length t.queue
