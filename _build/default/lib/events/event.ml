module Value = Oasis_rdl.Value

type value = Value.t

type t = { name : string; source : string; params : value array; stamp : float; seq : int }

let make ~name ~source ?(stamp = 0.0) ?(seq = 0) params =
  { name; source; params = Array.of_list params; stamp; seq }

type pattern = Lit of value | Var of string | Any

type template = { tname : string; tsource : string option; pats : pattern array }

let template ?source tname pats = { tname; tsource = source; pats = Array.of_list pats }

type env = (string * value) list

let matches ?(env = []) tpl e =
  if not (String.equal tpl.tname e.name) then None
  else if (match tpl.tsource with Some s -> not (String.equal s e.source) | None -> false)
  then None
  else if Array.length tpl.pats <> Array.length e.params then None
  else
    let rec go i env =
      if i >= Array.length tpl.pats then Some env
      else
        let v = e.params.(i) in
        match tpl.pats.(i) with
        | Any -> go (i + 1) env
        | Lit expected -> if Value.equal expected v then go (i + 1) env else None
        | Var x -> (
            match List.assoc_opt x env with
            | Some bound -> if Value.equal bound v then go (i + 1) env else None
            | None -> go (i + 1) ((x, v) :: env))
    in
    go 0 env

let instantiate env tpl =
  {
    tpl with
    pats =
      Array.map
        (function
          | Var x as p -> (
              match List.assoc_opt x env with Some v -> Lit v | None -> p)
          | (Lit _ | Any) as p -> p)
        tpl.pats;
  }

let specificity tpl =
  Array.fold_left (fun n -> function Lit _ -> n + 1 | Var _ | Any -> n) 0 tpl.pats

let pp ppf e =
  Format.fprintf ppf "%s.%s(%s)@@%.4f" e.source e.name
    (String.concat ", " (Array.to_list (Array.map Value.to_string e.params)))
    e.stamp

let pp_template ppf tpl =
  let pat = function Lit v -> Value.to_string v | Var x -> x | Any -> "*" in
  Format.fprintf ppf "%s%s(%s)"
    (match tpl.tsource with Some s -> s ^ "." | None -> "")
    tpl.tname
    (String.concat ", " (Array.to_list (Array.map pat tpl.pats)))

let to_string e = Format.asprintf "%a" pp e

let marshal e =
  let buf = Buffer.create 64 in
  Buffer.add_string buf e.name;
  Buffer.add_char buf '\x00';
  Buffer.add_string buf e.source;
  Buffer.add_char buf '\x00';
  Array.iter
    (fun v ->
      Buffer.add_string buf (Value.marshal v);
      Buffer.add_char buf '\x00')
    e.params;
  Buffer.add_string buf (Printf.sprintf "%f#%d" e.stamp e.seq);
  Buffer.contents buf
