lib/oasis/credrec.mli: Format
