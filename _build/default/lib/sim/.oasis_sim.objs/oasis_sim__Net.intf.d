lib/sim/net.mli: Clock Engine Oasis_util Stats
