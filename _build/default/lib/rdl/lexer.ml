type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | SETLIT of string
  | OBJLIT of string * string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | COLON
  | STAR
  | ARROW
  | WEDGE
  | ELECT
  | REVOKE
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | KW_IMPORT
  | KW_DEF
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_IN
  | KW_SUBSET
  | EOF

exception Lex_error of string * int

let keyword = function
  | "import" -> Some KW_IMPORT
  | "def" -> Some KW_DEF
  | "and" -> Some KW_AND
  | "or" -> Some KW_OR
  | "not" -> Some KW_NOT
  | "in" -> Some KW_IN
  | "subset" -> Some KW_SUBSET
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let tokens = ref [] in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let error msg = raise (Lex_error (msg, !line)) in
  let pos = ref 0 in
  let peek off = if !pos + off < n then Some src.[!pos + off] else None in
  let read_while pred =
    let start = !pos in
    while !pos < n && pred src.[!pos] do
      incr pos
    done;
    String.sub src start (!pos - start)
  in
  let read_string () =
    (* Called with [pos] on the opening quote. *)
    incr pos;
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match src.[!pos] with
        | '"' -> incr pos
        | '\\' when !pos + 1 < n ->
            Buffer.add_char buf src.[!pos + 1];
            pos := !pos + 2;
            go ()
        | '\n' -> error "newline in string"
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  while !pos < n do
    let c = src.[!pos] in
    match c with
    | ' ' | '\t' | '\r' -> incr pos
    | '\n' ->
        incr line;
        incr pos
    | '#' ->
        while !pos < n && src.[!pos] <> '\n' do
          incr pos
        done
    | '-' when peek 1 = Some '-' ->
        while !pos < n && src.[!pos] <> '\n' do
          incr pos
        done
    | '(' ->
        emit LPAREN;
        incr pos
    | ')' ->
        emit RPAREN;
        incr pos
    | '[' ->
        emit LBRACKET;
        incr pos
    | ']' ->
        emit RBRACKET;
        incr pos
    | ',' ->
        emit COMMA;
        incr pos
    | '.' ->
        emit DOT;
        incr pos
    | ':' ->
        emit COLON;
        incr pos
    | '*' ->
        emit STAR;
        incr pos
    | '=' ->
        emit EQ;
        incr pos
    | '{' -> (
        incr pos;
        let elements = read_while (fun c -> c <> '}' && c <> '\n') in
        match peek 0 with
        | Some '}' ->
            incr pos;
            emit (SETLIT elements)
        | _ -> error "unterminated set literal")
    | '"' -> emit (STRING (read_string ()))
    | '@' ->
        incr pos;
        let tyname = read_while is_ident_char in
        if String.length tyname = 0 then error "expected type name after '@'";
        if peek 0 <> Some '"' then error "expected string literal after '@typename'";
        emit (OBJLIT (tyname, read_string ()))
    | '<' -> (
        match peek 1 with
        | Some '-' ->
            emit ARROW;
            pos := !pos + 2
        | Some '|' ->
            emit ELECT;
            pos := !pos + 2
        | Some '>' ->
            emit NE;
            pos := !pos + 2
        | Some '=' ->
            emit LE;
            pos := !pos + 2
        | _ ->
            emit LT;
            incr pos)
    | '>' -> (
        match peek 1 with
        | Some '=' ->
            emit GE;
            pos := !pos + 2
        | _ ->
            emit GT;
            incr pos)
    | '|' -> (
        match peek 1 with
        | Some '>' ->
            emit REVOKE;
            pos := !pos + 2
        | _ -> error "unexpected '|'")
    | '/' -> (
        match peek 1 with
        | Some '\\' ->
            emit WEDGE;
            pos := !pos + 2
        | _ -> error "unexpected '/'")
    | '&' -> (
        match peek 1 with
        | Some '&' ->
            emit WEDGE;
            pos := !pos + 2
        | _ -> error "unexpected '&'")
    | c when is_digit c -> emit (INT (int_of_string (read_while is_digit)))
    | c when is_ident_start c -> (
        let word = read_while is_ident_char in
        match keyword word with Some kw -> emit kw | None -> emit (IDENT word))
    | c -> error (Printf.sprintf "unexpected character %C" c)
  done;
  emit EOF;
  List.rev !tokens

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "IDENT %s" s
  | INT n -> Format.fprintf ppf "INT %d" n
  | STRING s -> Format.fprintf ppf "STRING %S" s
  | SETLIT s -> Format.fprintf ppf "SETLIT {%s}" s
  | OBJLIT (t, i) -> Format.fprintf ppf "OBJLIT @%s%S" t i
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | LBRACKET -> Format.pp_print_string ppf "["
  | RBRACKET -> Format.pp_print_string ppf "]"
  | COMMA -> Format.pp_print_string ppf ","
  | DOT -> Format.pp_print_string ppf "."
  | COLON -> Format.pp_print_string ppf ":"
  | STAR -> Format.pp_print_string ppf "*"
  | ARROW -> Format.pp_print_string ppf "<-"
  | WEDGE -> Format.pp_print_string ppf "/\\"
  | ELECT -> Format.pp_print_string ppf "<|"
  | REVOKE -> Format.pp_print_string ppf "|>"
  | EQ -> Format.pp_print_string ppf "="
  | NE -> Format.pp_print_string ppf "<>"
  | LT -> Format.pp_print_string ppf "<"
  | LE -> Format.pp_print_string ppf "<="
  | GT -> Format.pp_print_string ppf ">"
  | GE -> Format.pp_print_string ppf ">="
  | KW_IMPORT -> Format.pp_print_string ppf "import"
  | KW_DEF -> Format.pp_print_string ppf "def"
  | KW_AND -> Format.pp_print_string ppf "and"
  | KW_OR -> Format.pp_print_string ppf "or"
  | KW_NOT -> Format.pp_print_string ppf "not"
  | KW_IN -> Format.pp_print_string ppf "in"
  | KW_SUBSET -> Format.pp_print_string ppf "subset"
  | EOF -> Format.pp_print_string ppf "<eof>"
