lib/oasis/acl.ml: Char List Printf String
