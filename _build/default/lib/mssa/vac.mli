(** Value-adding custodes (§5.2, §5.6).

    A VAC appears to its clients as a standard file custode but is
    implemented by abstracting the interface of the custode (or VAC) below —
    here, an {e indexed} custode (fig 5.7): it adds keyword search, passes
    read/write through unmodified, and holds a single certificate for the
    level below covering all its files (§5.5: one certificate per VAC, not
    per file, thanks to shared ACLs). *)

type t

type below = Below_custode of Custode.t | Below_vac of t

val create :
  Oasis_sim.Net.t ->
  Oasis_sim.Net.host ->
  Oasis_core.Service.registry ->
  name:string ->
  below:below ->
  below_cert:Oasis_core.Cert.rmc ->
  (t, string) result
(** [below_cert] is this VAC's own [UseAcl] certificate at the level
    below. *)

val name : t -> string
val service : t -> Oasis_core.Service.t
val host : t -> Oasis_sim.Net.host
val below_cert : t -> Oasis_core.Cert.rmc
val bottom : t -> Custode.t
(** The real custode at the bottom of the stack. *)

val bottom_exec_cert : t -> Oasis_core.Cert.rmc
(** The certificate the {e lowest} VAC holds for the bottom custode — what a
    bypass route executes with (fig 5.8). *)

val depth : t -> int
(** Number of custodes in the stack including the bottom. *)

val grant : t -> client:Oasis_core.Principal.vci -> Oasis_core.Cert.rmc
(** Issue a client a [UseAcl("vac", ...)] certificate for this VAC.  Its
    credential record conjoins the VAC's own validity at the level below,
    so revocation anywhere down the stack cascades to clients. *)

val revoke_grants : t -> unit
(** Invalidate every certificate this VAC has granted (policy change). *)

(** {1 Operations through the stack (no bypassing: one hop per level)} *)

val read :
  t ->
  client_host:Oasis_sim.Net.host ->
  cert:Oasis_core.Cert.rmc ->
  file:int ->
  ((string, string) result -> unit) ->
  unit

val write :
  t ->
  client_host:Oasis_sim.Net.host ->
  cert:Oasis_core.Cert.rmc ->
  file:int ->
  string ->
  ((unit, string) result -> unit) ->
  unit

val search :
  t ->
  client_host:Oasis_sim.Net.host ->
  cert:Oasis_core.Cert.rmc ->
  string ->
  ((int list, string) result -> unit) ->
  unit
(** The added value: keyword lookup (served at this VAC; index maintained on
    writes through the stack). *)
