(** Federation-wide static analysis of the cross-service role graph.

    {!Oasis_rdl.Analyze} checks one rolefile at a time; this module checks
    the federation as a whole — services grant roles on the strength of
    roles of other services (§2.10), so the credential graph can contain
    bootstrap deadlocks, unreachable roles and revocation gaps that no
    single-file analysis can see.

    Diagnostic codes (continuing the [RDLnnn] space):

    {v
    code      severity  meaning
    OASIS001  error     credential cycle with no bootstrap (deadlock)
    OASIS002  warning   role unreachable from the federation's axioms
    OASIS003  error     reference to a role a federation service lacks
    OASIS004  warning   starred prerequisite from outside the federation
                        (no revocation channel to cascade over)
    OASIS005  info      revocable prerequisite consumed without *
    v} *)

type member = {
  fl_name : string;  (** service name, as used in [Service.role] references *)
  fl_file : string;  (** diagnostic anchor, e.g. the rolefile path *)
  fl_rolefile : Oasis_rdl.Ast.rolefile;
}

type node = string * string
(** A role of a service: [(service, role)]. *)

type t

val make : member list -> t
(** Build the federation and run per-member type inference (members whose
    inference fails keep unknown signatures; the per-file pass reports the
    error itself). *)

val of_registry : Service.registry -> t
(** The federation of every service currently registered. *)

val member_context : t -> Oasis_rdl.Analyze.context
(** A per-file analysis context whose [external_sig] resolves against the
    other members' inferred signatures. *)

val check : ?per_file:bool -> t -> Oasis_rdl.Analyze.diag list
(** Federation-wide diagnostics, sorted by (file, line, code).  With
    [per_file] (default false) the per-rolefile {!Oasis_rdl.Analyze.check}
    diagnostics for each member are included too, computed under
    {!member_context}. *)

val reachable : t -> (node, unit) Hashtbl.t
(** Least fixpoint of role derivability from the federation's axioms
    (entries with no prerequisites).  Roles of services outside the
    federation are assumed reachable, so "not in the table" is a proof of
    unreachability, not the converse. *)

val can_reach : t -> holder:node -> target:node -> bool
(** Privilege-escalation query: can a principal holding [holder] (with
    colluding electors, and treating constraints as satisfiable unless
    provably not) ever acquire [target]?  An upper bound: [false] is a
    guarantee. *)

val escalation : t -> holder:node -> node list
(** The escalation frontier: roles acquirable with [holder] that are not
    derivable from the axioms alone.  Sorted; excludes [holder] itself. *)

val node_str : node -> string
(** ["service.role"]. *)
