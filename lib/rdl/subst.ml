(** Substitution over RDL expressions and constraints.

    The symbolic escalation prover (Oasis.Federation_lint) renames every
    statement's local variables into a path-global namespace and substitutes
    the symbolic arguments flowing along a derivation chain into each hop's
    constraint, so {!Analyze.sat} can prune infeasible paths.  A substitution
    maps variable names to expressions; variables without a mapping are
    handled by the [fresh] fallback (identity by default). *)

open Ast

type map = (string, expr) Hashtbl.t

let create () : map = Hashtbl.create 16

let find (m : map) v = Hashtbl.find_opt m v

let bind (m : map) v e = Hashtbl.replace m v e

(* Substitute [m] through an expression; unmapped variables go through
   [fresh], which may mint (and record) a new path variable. *)
let rec expr ?(fresh = fun v -> Evar v) (m : map) = function
  | Elit v -> Elit v
  | Evar v -> ( match find m v with Some e -> e | None -> fresh v)
  | Ecall (f, args) -> Ecall (f, List.map (expr ~fresh m) args)

(* Substitute through a constraint.  The only subtle form is the binder
   [x <- e]: its left-hand side is a variable position.  If the path already
   pins [x] to a literal (or a non-variable expression), the §3.2.4
   bind-on-bound semantics degenerate to an equality test, so the
   substituted form is [Crel (Eq, subst x, subst e)]; if [x] maps to another
   variable the binder is kept under the new name. *)
let rec constr ?(fresh = fun v -> Evar v) (m : map) = function
  | Cand (a, b) -> Cand (constr ~fresh m a, constr ~fresh m b)
  | Cor (a, b) -> Cor (constr ~fresh m a, constr ~fresh m b)
  | Cnot c -> Cnot (constr ~fresh m c)
  | Cstar c -> Cstar (constr ~fresh m c)
  | Crel (op, a, b) -> Crel (op, expr ~fresh m a, expr ~fresh m b)
  | Cin (e, g) -> Cin (expr ~fresh m e, g)
  | Csubset (a, b) -> Csubset (expr ~fresh m a, expr ~fresh m b)
  | Ccall (f, args) -> Ccall (f, List.map (expr ~fresh m) args)
  | Cbind (x, e) -> (
      let e' = expr ~fresh m e in
      match (match find m x with Some ex -> ex | None -> fresh x) with
      | Evar y -> Cbind (y, e')
      | pinned -> Crel (Eq, pinned, e'))

(* Conjunction over optional constraints (None = true). *)
let conj a b =
  match (a, b) with
  | None, c | c, None -> c
  | Some a, Some b -> Some (Cand (a, b))

let conj_list cs = List.fold_left conj None cs
