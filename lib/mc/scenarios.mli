(** The built-in scenarios.

    - [golf_club] — the §3.2.2/§4.11 membership narrative: durable club
      service, Chair fires a member, host crashes mid-cascade, member must
      stay fired across recovery and re-enter only after re-hire.
    - [mssa] — the §5 hospital flavour: a partition between the admissions
      and records services traps a logoff's revocation cascade; the world
      must converge within the heartbeat bound of the heal, and a
      struck-off doctor stays struck off.
    - [planted] — a deliberately planted client bug (live-only
      re-registration after a crash, no [~since]) whose triggering
      ordering lies outside the latency envelope, so seed sweeps cannot
      reach it and exhaustive exploration must. *)

val golf_club : Scenario.t
val mssa : Scenario.t
val planted : Scenario.t

val all : Scenario.t list
val find : string -> Scenario.t option
