lib/oasis/interop.ml: Cert Hashtbl List Oasis_rdl Principal Service String
