test/test_mssa.ml: Alcotest List Oasis_core Oasis_mssa Oasis_rdl Oasis_sim Printf Result
