(* Sharded credential plane: consistent-hash placement plus a router in
   front of N sibling Service replicas.  See shard.mli for the design
   story; the invariant that keeps this module small is that credential
   coherence never lives here — cross-shard edges are external records and
   the §4.10 machinery, exactly as between unrelated services. *)

module Net = Oasis_sim.Net
module Engine = Oasis_sim.Engine
module Siphash = Oasis_util.Siphash
module Value = Oasis_rdl.Value
module Broker = Oasis_events.Broker

type value = Oasis_rdl.Value.t

(* One fixed key: placement must be a pure function of the routing key and
   the ring membership, identical across processes and runs. *)
let ring_key = Siphash.key_of_string "oasis.shard.ring.v1"

module Ring = struct
  type t = {
    r_vnodes : int;
    r_ids : int list;  (* ascending *)
    r_points : (int64 * int) array;  (* (point, shard id), ascending unsigned *)
  }

  let point id v = Siphash.hash ring_key (Printf.sprintf "%d/%d" id v)

  let of_ids ~vnodes ids =
    let pts =
      List.concat_map (fun id -> List.init vnodes (fun v -> (point id v, id))) ids
      |> Array.of_list
    in
    Array.sort
      (fun (p1, i1) (p2, i2) ->
        match Int64.unsigned_compare p1 p2 with 0 -> compare i1 i2 | c -> c)
      pts;
    { r_vnodes = vnodes; r_ids = List.sort compare ids; r_points = pts }

  let make ?(vnodes = 64) ~shards () =
    if shards < 1 then invalid_arg "Ring.make: shards must be >= 1";
    if vnodes < 1 then invalid_arg "Ring.make: vnodes must be >= 1";
    of_ids ~vnodes (List.init shards Fun.id)

  let shard_count t = List.length t.r_ids
  let vnodes t = t.r_vnodes
  let shard_ids t = t.r_ids

  (* First point clockwise from the key's hash, wrapping at the top. *)
  let owner t key =
    let h = Siphash.hash ring_key key in
    let pts = t.r_points in
    let n = Array.length pts in
    let rec bsearch lo hi =
      (* invariant: points below [lo] are < h, points at/above [hi] are >= h *)
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if Int64.unsigned_compare (fst pts.(mid)) h < 0 then bsearch (mid + 1) hi
        else bsearch lo mid
    in
    let i = bsearch 0 n in
    snd pts.(if i = n then 0 else i)

  let add_shard t =
    let fresh = 1 + List.fold_left max (-1) t.r_ids in
    of_ids ~vnodes:t.r_vnodes (t.r_ids @ [ fresh ])

  let remove_shard t id =
    (* An unknown id used to no-op silently (the filter removed nothing),
       masking caller bugs — resharding code that "removed" a shard it had
       already removed, or mistyped an id, saw a healthy ring.  Raise, as
       [make] does for invalid parameters. *)
    if not (List.mem id t.r_ids) then
      invalid_arg (Printf.sprintf "Ring.remove_shard: shard %d is not in the ring" id);
    let rest = List.filter (fun i -> i <> id) t.r_ids in
    if rest = [] then invalid_arg "Ring.remove_shard: cannot empty the ring";
    of_ids ~vnodes:t.r_vnodes rest
end

(* Route by role instance, not by principal: one principal's roles may land
   on different shards, which is precisely what exercises cross-shard
   cascades.  The separator cannot occur in marshalled values. *)
let route_key ~role ~args =
  role ^ "(" ^ String.concat "\x01" (List.map Value.marshal args) ^ ")"

type t = {
  sh_net : Net.t;
  sh_name : string;
  sh_router : Net.host;
  sh_ring : Ring.t;
  sh_groups : Replica.t array;  (* index = shard id *)
}

let shard_service_name name i = Printf.sprintf "%s#%d" name i

(* Replica 0 keeps the historical host name so K = 1 deployments are
   byte-identical to the pre-replication plane (the persisted model-checker
   schedules replay against those host names). *)
let replica_host_name name i j =
  if j = 0 then Printf.sprintf "h.%s.s%d" name i
  else Printf.sprintf "h.%s.s%d.r%d" name i j

let create net reg ~name ~rolefile ~shards ?(vnodes = 64) ?(heartbeat = 1.0) ?(durable = false)
    ?(snapshot_every = 128) ?(groups = []) ?(lint = `Warn) ?(replicas = 1) ?repl_heartbeat
    ?repl_lease ?repl_stagger () =
  if shards < 1 then Error "Shard.create: shards must be >= 1"
  else if replicas < 1 then Error "Shard.create: replicas must be >= 1"
  else if replicas > 1 && not durable then
    (* Shipping replays the WAL; a memory-only backup would promote empty. *)
    Error "Shard.create: replicas > 1 requires durable:true"
  else
    let router = Net.add_host net ("h." ^ name ^ ".router") in
    let ring = Ring.make ~vnodes ~shards () in
    let build_replica i j =
      let host = Net.add_host net (replica_host_name name i j) in
      let disk = if durable then Some (Oasis_store.Disk.create net host ()) else None in
      match
        (* §4.3 compound folding is disabled: it bakes every same-argument
           role derived during an entry into one certificate record, but
           instance-sharding deliberately places those roles on different
           shards — a fold can only ever see its own shard's slice, so the
           sharded and unsharded deployments would diverge.  One
           certificate per entered role instead. *)
        Service.create net host reg ~name:(shard_service_name name i) ~rolefile ~heartbeat
          ?disk ~snapshot_every ~lint ~compound_certificates:false ~register:(j = 0) ()
      with
      | Error e -> Error (Printf.sprintf "shard %d replica %d: %s" i j e)
      | Ok svc ->
          (* Seed static groups on every replica: group allocation consumes
             record ids, and replicas must agree on the id prefix so the
             shipped stream lands at the same coordinates everywhere. *)
          List.iter
            (fun (g, members) ->
              let grp = Service.group svc g in
              List.iter (fun m -> Group.add grp (Value.Str m)) members)
            groups;
          Ok svc
    in
    let rec build i acc =
      if i = shards then Ok (List.rev acc)
      else
        let rec build_members j macc =
          if j = replicas then Ok (List.rev macc)
          else
            match build_replica i j with
            | Error e -> Error e
            | Ok svc -> build_members (j + 1) (svc :: macc)
        in
        match build_members 0 [] with
        | Error e -> Error e
        | Ok members ->
            let grp =
              Replica.create net
                ~members:(Array.of_list members)
                ?heartbeat:repl_heartbeat ?lease:repl_lease ?stagger:repl_stagger ()
            in
            build (i + 1) ((grp, members) :: acc)
    in
    match build 0 [] with
    | Error e -> Error e
    | Ok built ->
        (* Every replica of every shard knows the sibling *names* of the
           other shards; name-based wiring survives failover because the
           promoted backup re-registers under the same logical name. *)
        List.iteri
          (fun i (_, members) ->
            List.iter
              (fun svc ->
                List.iteri
                  (fun i' _ ->
                    if i' <> i then Service.add_sibling svc (shard_service_name name i'))
                  built)
              members)
          built;
        let arr = Array.of_list (List.map fst built) in
        Ok { sh_net = net; sh_name = name; sh_router = router; sh_ring = ring; sh_groups = arr }

let name t = t.sh_name
let ring t = t.sh_ring
let shard_count t = Array.length t.sh_groups
let router_host t = t.sh_router
let shards t = Array.map Replica.primary t.sh_groups
let shard t i = Replica.primary t.sh_groups.(i)
let replica_groups t = t.sh_groups
let replica_group t i = t.sh_groups.(i)
let owner_index t ~role ~args = Ring.owner t.sh_ring (route_key ~role ~args)
let owner_group t ~role ~args = t.sh_groups.(owner_index t ~role ~args)
let owner t ~role ~args = Replica.primary (owner_group t ~role ~args)

let group_by_service_name t svc =
  let n = Array.length t.sh_groups in
  let rec go i =
    if i = n then None
    else if String.equal (Service.name (Replica.primary t.sh_groups.(i))) svc then
      Some t.sh_groups.(i)
    else go (i + 1)
  in
  go 0

(* Routed operations.  The router holds no state: each handler re-derives
   the owner from the request, so retried (hence possibly re-delivered)
   requests are idempotent exactly when the shard-side operation is.  The
   asynchronous ops use rpc_async_retry because their acks are themselves
   asynchronous — a fire ack rides the owning shard's WAL group commit
   (Service.ack_when_durable), and answering from a synchronous handler
   would resurrect the acked-but-lost-firing bug the model checker found
   in PR 6.  Timeouts are generous: the forwarded leg may itself run a
   cross-shard validation RPC with its own retry budget. *)

let routed_timeout = 4.0

(* A promotion that has committed but not finished replaying must not serve:
   the new primary's table is mid-rebuild, and answering from it could hand
   out record ids that collide with not-yet-restored identities.  Dropping
   the forward (no reply at all) lets the outer retry loop re-forward after
   the replay settles — indistinguishable, to the client, from one lost
   message. *)
let forward g f = if Replica.ready g then f (Replica.primary g)

let request_entry t ~client_host ~client ~role ~args ?(creds = []) k =
  Net.rpc_async_retry t.sh_net ~category:"shard.entry"
    ~size:(128 + (96 * List.length creds))
    ~timeout:routed_timeout ~src:client_host ~dst:t.sh_router
    (fun reply ->
      forward (owner_group t ~role ~args) (fun svc ->
          Service.request_entry svc ~client_host:t.sh_router ~client ~role ~args ~creds reply))
    k

let revoke_role_instance t ~client_host ~revoker ~role ~args k =
  Net.rpc_async_retry t.sh_net ~category:"shard.rbr" ~size:160 ~timeout:routed_timeout
    ~src:client_host ~dst:t.sh_router
    (fun reply ->
      forward (owner_group t ~role ~args) (fun svc ->
          Service.revoke_role_instance svc ~client_host:t.sh_router ~revoker ~role ~args reply))
    k

let reinstate_role_instance t ~client_host ~revoker ~role ~args k =
  Net.rpc_async_retry t.sh_net ~category:"shard.rbr" ~size:160 ~timeout:routed_timeout
    ~src:client_host ~dst:t.sh_router
    (fun reply ->
      forward (owner_group t ~role ~args) (fun svc ->
          Service.reinstate_role_instance svc ~client_host:t.sh_router ~revoker ~role ~args
            reply))
    k

let fail_closed_verdict service =
  Printf.sprintf
    "fail-closed: issuing shard %s unreachable; certificate treated as invalid until it \
     answers"
    service

let validate t ~client_host ~client ?need_role cert k =
  Net.rpc_async_retry t.sh_net ~category:"shard.validate" ~size:96 ~timeout:routed_timeout
    ~src:client_host ~dst:t.sh_router
    (fun reply ->
      match group_by_service_name t cert.Cert.service with
      | None -> reply (Error ("certificate for foreign service " ^ cert.Cert.service))
      | Some g ->
          (* Synchronous at the issuing shard; the record reference in the
             certificate is only meaningful against that shard's table.

             The forwarded leg used to surface a raw rpc_retry giveup —
             [Error "timeout"] — as a hard verdict whenever the owning
             shard was down or mid-recovery, so a transient crash turned
             into a spurious "certificate invalid" at the caller.  Mirror
             Service's §4.10 reread-giveup handling instead: back off one
             broker heartbeat (re-resolving the primary, which may have
             failed over meanwhile), retry once, and only then return an
             {e explicit} fail-closed verdict — a deliberate decision the
             caller can distinguish from a validation failure, not a leaked
             transport error.  The budget (≈1.2 s per attempt + one
             heartbeat backoff) stays inside one [routed_timeout] attempt,
             so the outer loop still re-forwards cleanly on top of this. *)
          let rec attempt retries_left =
            let svc = Replica.primary g in
            let backoff_or_fail () =
              if retries_left > 0 then
                Engine.schedule (Net.engine t.sh_net)
                  ~delay:(Broker.server_heartbeat (Service.broker svc))
                  (fun () -> attempt (retries_left - 1))
              else reply (Error (fail_closed_verdict cert.Cert.service))
            in
            if not (Replica.ready g) then
              (* A promotion is mid-replay: the new primary's table is
                 being rebuilt and could answer wrongly.  Same treatment
                 as unreachable. *)
              backoff_or_fail ()
            else
              Net.rpc_retry t.sh_net ~category:"shard.validate.fwd" ~timeout:0.5 ~attempts:2
                ~backoff:0.2 ~src:t.sh_router ~dst:(Service.host svc)
                (fun () ->
                  (* The handler wraps the whole verdict — including a
                     validation failure — in [Ok], so by construction the
                     only [Error _] the continuation can see is the
                     transport layer's giveup.  String-matching the
                     "timeout" sentinel here would silently misroute any
                     future [pp_failure] value that happened to collide
                     with it. *)
                  Ok
                    (match Service.validate svc ~client ?need_role cert with
                    | Ok () -> Ok ()
                    | Error f -> Error (Format.asprintf "%a" Service.pp_failure f)))
                (function
                  | Ok verdict -> reply verdict
                  | Error _ -> backoff_or_fail ())
          in
          attempt 1)
    k

let exit_role t ~client_host cert k =
  Net.rpc_async_retry t.sh_net ~category:"shard.exit" ~size:96 ~timeout:routed_timeout
    ~src:client_host ~dst:t.sh_router
    (fun reply ->
      match group_by_service_name t cert.Cert.service with
      | None -> reply (Error ("certificate for foreign service " ^ cert.Cert.service))
      | Some g -> forward g (fun svc -> Service.exit_role svc ~client_host:t.sh_router cert reply))
    k

let blacklisted t ~role ~args = Service.blacklisted (owner t ~role ~args) ~role ~args

let fingerprint t =
  let buf = Buffer.create 64 in
  Array.iter
    (fun g ->
      if Replica.replica_count g = 1 then
        (* Byte-identical to the pre-replication fingerprint so persisted
           model-checker schedules keep replaying. *)
        let s = Replica.primary g in
        Buffer.add_string buf
          (Printf.sprintf "%s=%Lx;" (Service.name s) (Service.fingerprint s))
      else begin
        List.iteri
          (fun j s ->
            Buffer.add_string buf
              (Printf.sprintf "%s/%d=%Lx;" (Service.name s) j (Service.fingerprint s)))
          (Replica.members g);
        Buffer.add_string buf (Printf.sprintf "repl=%Lx;" (Replica.fingerprint g))
      end)
    t.sh_groups;
  Siphash.hash ring_key (Buffer.contents buf)

let durable_flush t =
  Array.iter (fun g -> List.iter Service.durable_flush (Replica.members g)) t.sh_groups
