lib/rdl/value.ml: Buffer Char Format Int List Option Printf String
