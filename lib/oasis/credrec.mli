(** Credential records (§4.6–4.8, fig 4.7).

    A credential record is a small record representing a server's current
    belief about some fact.  Records form a DAG: a child's value is a boolean
    function (And/Or/Nand/Nor, with optional negation on each parent edge) of
    its parents' values.  As in the paper, each record keeps {e counters} of
    how many parents are currently true, false and unknown — all that is
    needed to compute its own state.  Adjacency is {e indexed}: every edge
    has a table-unique id kept both in the parent's child set and in a back
    index on the child, so detaching a dying record from all its parents is
    O(1) per edge (the back index goes beyond the paper's counters-only
    sketch, but is invisible to the semantics).  State changes propagate to
    children via a generation-stamped worklist, so a cascade recomputes each
    record once per settled counter change instead of once per DAG path;
    {e notify} callbacks fire so that other servers (via event notification)
    and certificate caches can react.

    References are [(table index, magic)] pairs; a slot's magic is bumped on
    reuse, so references are never resurrected: a dangling reference reads as
    permanently [False] — exactly the paper's licence to delete records
    whose value is false forever. *)

type table

type cref = { index : int; magic : int }

type state = True | False | Unknown

type op = And | Or | Nand | Nor

val create_table : unit -> table

(** {1 Construction} *)

val leaf : table -> ?state:state -> unit -> cref
(** A record representing a directly-asserted fact (default [True]). *)

val combine : table -> ?op:op -> (cref * bool) list -> cref
(** [combine t ~op parents] creates a record computing [op] over the parents;
    the [bool] marks a negated edge ([true] = child sees the parent
    inverted).  Default op is [And].  With a single non-negated [And] parent
    the parent itself is returned (the paper's small optimisation, §4.7). *)

val combine_fresh : table -> ?op:op -> (cref * bool) list -> cref
(** Like {!combine} but always allocates a new record, even for a single
    parent — needed when the child must be independently revocable (e.g. a
    delegation record tied to the delegator's membership, §4.4). *)

val add_parent : table -> child:cref -> ?negated:bool -> cref -> unit
(** Attach an additional parent to an existing (non-leaf) record. *)

(** {1 Reading} *)

val state : table -> cref -> state
(** Current belief; a deleted or never-valid reference reads [False]. *)

val is_permanent : table -> cref -> bool
val live : table -> cref -> bool
(** Does the reference designate a live slot? *)

(** {1 Mutation} *)

val set_leaf : table -> cref -> state -> unit
(** Assert a leaf's value (propagates).  No-op on permanent records. *)

val invalidate : table -> cref -> unit
(** Revocation: force [False], permanently (propagates). *)

val make_permanent : table -> cref -> unit
(** Freeze the record at its current state. *)

(** {1 Flags and hooks} *)

val set_direct_use : table -> cref -> bool -> unit
(** The record backs an issued certificate; protects it from GC. *)

val set_auto_revoke : table -> cref -> bool -> unit

val on_change : table -> cref -> (state -> unit) -> unit
(** Notify hook (sets the paper's [Notify] flag); fires after every state
    change of this record. *)

val clear_hooks : table -> cref -> unit

(** {1 Garbage collection (§4.8)} *)

val gc_sweep : table -> int
(** Unlink edges from permanent parents (baking their frozen contribution
    into each child, possibly making the child permanent too), then delete
    permanent and uninteresting records.  Returns the number of slots
    reclaimed. *)

val live_records : table -> int

(** {1 Durable recovery (lib/store)} *)

val forget : table -> cref -> unit
(** Model a crash taking the record with it: free the slot {e without}
    bumping its magic, so the same reference can later be {!restore}d.
    Children are detached as if the reference dangled — a frozen
    permanently-False contribution is baked in, forcing the child
    permanent when False pins its operator (And/Nand). *)

val restore : table -> cref -> bool
(** Re-materialise a slot at a persisted [(index, magic)] identity so
    that references embedded in certificates held by remote parties
    resolve again after recovery.  The slot comes back as an empty
    (parentless, state [True]) And record; the caller re-attaches
    dependency parents or invalidates it.  Returns [false] when the
    identity cannot be honoured (slot in use, or its magic has moved
    past the persisted one).  Recovery must restore every persisted
    reference before allocating fresh records, lest a fresh allocation
    reuse a persisted identity. *)

(** {1 Introspection (tests and benches)} *)

val children_count : table -> cref -> int
(** Number of live outgoing edges (0 for dead references). *)

val edge_ops : table -> int
(** Monotone counter of elementary edge operations (attach, detach, cascade
    visit).  Lets tests assert asymptotic behaviour — e.g. that detaching n
    children from a 10k-child parent costs O(n) edge work, not O(n²). *)

val fingerprint : table -> int64
(** Deterministic SipHash over every live record — identity, operator,
    state, permanence, counters and (edge-id ordered) adjacency.  Equal
    table histories hash equally across processes and replays; the model
    checker folds it into per-service state hashes to prune explored
    interleavings. *)

val self_check : table -> (unit, string) result
(** Structural audit: edge/back-index symmetry, no dangling edges, counter
    sums and per-state recounts, and state consistency with counters for
    non-permanent combining records.  Only meaningful at quiescence. *)

val marshal_ref : cref -> string
val unmarshal_ref : string -> cref option
val pp_state : Format.formatter -> state -> unit
