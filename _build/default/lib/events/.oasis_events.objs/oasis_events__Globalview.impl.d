lib/events/globalview.ml: Bead Event Oasis_util
