(* Tests for the composite event language (parser + semantics via the bead
   machine on Local_io), the global-view baseline and aggregation
   (§6.4–6.11), including the paper's examples: Enters/Leaves, Together,
   Trapped, fire alarm and Gehani's squash EndOfPoint. *)

module Composite = Oasis_events.Composite
module Bead = Oasis_events.Bead
module Local_io = Oasis_events.Local_io
module Globalview = Oasis_events.Globalview
module Aggregate = Oasis_events.Aggregate
module Event = Oasis_events.Event
module V = Oasis_rdl.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let parse_ok src =
  match Composite.parse_result src with
  | Ok c -> c
  | Error e -> Alcotest.failf "composite parse failed on %S: %s" src e

(* --- parser --- *)

let test_parse_precedence () =
  (* $ binds tightest, then -, then |, then ; *)
  match parse_ok "$A(); B() - C() | D(); E()" with
  | Composite.Seq (Composite.Whenever _, Composite.Seq (Composite.Or (Composite.Without _, _), _))
    -> ()
  | c -> Alcotest.failf "unexpected shape: %s" (Composite.to_string c)

let test_parse_together_example () =
  (* §6.6: $Seen(A, R); $Seen(B, R) - Seen(A, Rp) *)
  match parse_ok "$Seen(A, R); $Seen(B, R) - Seen(A, Rp)" with
  | Composite.Seq (Composite.Whenever (Composite.Base _), Composite.Without (Composite.Whenever _, Composite.Base _, _)) -> ()
  | c -> Alcotest.failf "together shape: %s" (Composite.to_string c)

let test_parse_trapped_example () =
  ignore (parse_ok {|Alarm(); (Seen(B) - AllClear()); OwnsBadge(B, P)|})

let test_parse_squash_endofpoint () =
  (* Gehani's example, §6.6. *)
  ignore
    (parse_ok
       {|$serve(s); (((floor() | wall() | hit(i)) - front())
         | ($front(); ((floor(); floor()) | front()) - hit(i))
         | ($hit(i); (floor() | hit(j)) - front())
         | (hit(s) - hit(i) {i <> s})
         | ($hit(i); hit(i) - hit(j) {j <> i}))|})

let test_parse_side_expressions () =
  match parse_ok {|Seen(x, y) {x <> "rjh21"}
|} with
  | Composite.Base (_, [ Composite.Scmp (Oasis_rdl.Ast.Ne, Composite.Svar "x", Composite.Slit (V.Str "rjh21")) ]) -> ()
  | c -> Alcotest.failf "side shape: %s" (Composite.to_string c)

let test_parse_side_assignment_with_now () =
  match parse_ok "Alarm() {t := @ + 60}" with
  | Composite.Base (_, [ Composite.Sassign ("t", Composite.Sadd (Composite.Snow, Composite.Slit (V.Int 60))) ]) -> ()
  | c -> Alcotest.failf "assignment shape: %s" (Composite.to_string c)

let test_parse_delay_parameter () =
  match parse_ok "A() - B() {Delay = 2}" with
  | Composite.Without (_, _, { Composite.delay = Some 2.0; probability = None }) -> ()
  | c -> Alcotest.failf "delay param: %s" (Composite.to_string c)

let test_parse_probability_parameter () =
  match parse_ok "A() - B() {Probability = 0.9}" with
  | Composite.Without (_, _, { Composite.probability = Some p; _ }) ->
      checkb "p = 0.9" true (abs_float (p -. 0.9) < 1e-9)
  | c -> Alcotest.failf "prob param: %s" (Composite.to_string c)

let test_parse_source_pinned_template () =
  match parse_ok "P.Finished(27)" with
  | Composite.Base ({ Event.tsource = Some "P"; tname = "Finished"; _ }, []) -> ()
  | c -> Alcotest.failf "source pin: %s" (Composite.to_string c)

let test_parse_null () =
  checkb "null" true (parse_ok "null" = Composite.Null)

let test_parse_errors () =
  List.iter
    (fun src ->
      match Composite.parse_result src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected error for %S" src)
    [ "A() -"; "(A()"; "A() {x}"; "; A()"; "A() B()" ]

let test_parse_roundtrip () =
  List.iter
    (fun src ->
      let c = parse_ok src in
      let printed = Composite.to_string c in
      let c2 = parse_ok printed in
      if Composite.to_string c2 <> printed then
        Alcotest.failf "roundtrip unstable: %s -> %s" src printed)
    [
      "$Seen(A, R); $Seen(B, R) - Seen(A, Rp)";
      "A() | B(); C() - D() {Delay = 1}";
      "null; A(x) {x > 5}";
    ]

(* --- bead machine semantics on Local_io --- *)

let detect ?env io comp =
  let hits = ref [] in
  let d = Bead.detect io ?env ~start:0.0 (parse_ok comp) ~on_occur:(fun o -> hits := o :: !hits) in
  (d, hits)

let test_base_first_match_only () =
  let l = Local_io.create () in
  let _, hits = detect (Local_io.io l) "E(x)" in
  Local_io.set_time l 1.0;
  ignore (Local_io.signal l "E" [ V.Int 1 ]);
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l "E" [ V.Int 2 ]);
  checki "single occurrence" 1 (List.length !hits);
  match !hits with
  | [ o ] -> checkb "bound first" true (List.assoc "x" o.Bead.env = V.Int 1)
  | _ -> ()

let test_sequence () =
  let l = Local_io.create () in
  let _, hits = detect (Local_io.io l) "A(); B()" in
  Local_io.set_time l 1.0;
  ignore (Local_io.signal l "B" []) (* B before A: ignored *);
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l "A" []);
  Local_io.set_time l 3.0;
  ignore (Local_io.signal l "B" []);
  checki "fires once" 1 (List.length !hits);
  checkb "at B's time" true ((List.hd !hits).Bead.at = 3.0)

let test_sequence_var_flow () =
  let l = Local_io.create () in
  let _, hits = detect (Local_io.io l) "OwnsBadge(u, b); Seen(b, r)" in
  Local_io.set_time l 1.0;
  ignore (Local_io.signal l "OwnsBadge" [ V.Str "rjh"; V.Int 12 ]);
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l "Seen" [ V.Int 99; V.Str "T1" ]) (* wrong badge *);
  Local_io.set_time l 3.0;
  ignore (Local_io.signal l "Seen" [ V.Int 12; V.Str "T2" ]);
  checki "one" 1 (List.length !hits);
  checkb "room bound" true (List.assoc "r" (List.hd !hits).Bead.env = V.Str "T2")

let test_or_both_branches () =
  let l = Local_io.create () in
  let _, hits = detect (Local_io.io l) "A() | B()" in
  Local_io.set_time l 1.0;
  ignore (Local_io.signal l "A" []);
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l "B" []);
  checki "both fire" 2 (List.length !hits)

let test_whenever_repeats () =
  let l = Local_io.create () in
  let _, hits = detect (Local_io.io l) "$E(x)" in
  for i = 1 to 5 do
    Local_io.set_time l (float_of_int i);
    ignore (Local_io.signal l "E" [ V.Int i ])
  done;
  checki "five occurrences" 5 (List.length !hits);
  (* And each with its own binding (§6.4.2: unlike Kleene star). *)
  let xs = List.rev_map (fun o -> List.assoc "x" o.Bead.env) !hits in
  checkb "distinct bindings" true (xs = [ V.Int 1; V.Int 2; V.Int 3; V.Int 4; V.Int 5 ])

let test_whenever_null_terminates () =
  let l = Local_io.create () in
  let _, hits = detect (Local_io.io l) "$null" in
  checki "least solution: one occurrence" 1 (List.length !hits)

let test_without_blocks () =
  let l = Local_io.create () in
  let _, hits = detect (Local_io.io l) "A() - B()" in
  Local_io.set_time l 1.0;
  ignore (Local_io.signal l "B" []);
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l "A" []);
  Local_io.set_time l 3.0;
  checki "blocked by earlier B" 0 (List.length !hits)

let test_without_fires () =
  let l = Local_io.create () in
  let _, hits = detect (Local_io.io l) "A() - B()" in
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l "A" []);
  Local_io.set_time l 3.0;
  checki "fires when no B" 1 (List.length !hits)

let test_without_waits_for_horizon () =
  (* A and B come from different sources; B's source is delayed.  The
     candidate must be held until B's horizon passes its stamp (§6.8.2). *)
  let l = Local_io.create () in
  let _, hits = detect (Local_io.io l) "src1.A() - src2.B()" in
  Local_io.hold_horizon l "src2";
  ignore (Local_io.signal l ~source:"src2" ~stamp:0.0 "B" []) (* establish source, old stamp *);
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l ~source:"src1" "A" []);
  Local_io.set_time l 3.0;
  checki "held while src2 horizon frozen" 0 (List.length !hits);
  (* A late B arrives with stamp before A: candidate must die. *)
  ignore (Local_io.signal l ~source:"src2" ~stamp:1.5 "B" []);
  Local_io.release_horizon l "src2";
  Local_io.set_time l 4.0;
  checki "late blocker kills candidate" 0 (List.length !hits)

let test_without_horizon_release_fires () =
  let l = Local_io.create () in
  let _, hits = detect (Local_io.io l) "src1.A() - src2.B()" in
  Local_io.hold_horizon l "src2";
  ignore (Local_io.signal l ~source:"src2" ~stamp:0.0 "B" []);
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l ~source:"src1" "A" []);
  checki "held" 0 (List.length !hits);
  Local_io.release_horizon l "src2";
  Local_io.set_time l 3.0;
  checki "released when horizon catches up" 1 (List.length !hits)

let test_without_delay_parameter () =
  (* §6.8.3: Delay=d trades correctness for latency — assume absence after
     d seconds even without horizon knowledge. *)
  let l = Local_io.create () in
  let _, hits = detect (Local_io.io l) "src1.A() - src2.B() {Delay = 1}" in
  Local_io.hold_horizon l "src2";
  ignore (Local_io.signal l ~source:"src2" ~stamp:0.0 "B" []);
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l ~source:"src1" "A" []);
  checki "held initially" 0 (List.length !hits);
  Local_io.set_time l 3.5 (* > 2.0 + Delay *);
  checki "assumed absent after delay" 1 (List.length !hits)

let test_side_expression_filters () =
  let l = Local_io.create () in
  let _, hits = detect (Local_io.io l) {|$Withdraw(z) {z > 500}|} in
  Local_io.set_time l 1.0;
  ignore (Local_io.signal l "Withdraw" [ V.Int 100 ]);
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l "Withdraw" [ V.Int 600 ]);
  checki "only large" 1 (List.length !hits)

let test_initial_env_constrains () =
  let l = Local_io.create () in
  let hits = ref [] in
  let _ =
    Bead.detect (Local_io.io l) ~env:[ ("b", V.Int 12) ] ~start:0.0 (parse_ok "Seen(b, r)")
      ~on_occur:(fun o -> hits := o :: !hits)
  in
  Local_io.set_time l 1.0;
  ignore (Local_io.signal l "Seen" [ V.Int 99; V.Str "x" ]);
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l "Seen" [ V.Int 12; V.Str "y" ]);
  checki "only env-matching" 1 (List.length !hits)

let test_enters_example () =
  (* §6.6 Enters: $Seen(B, Rp); Seen(B, R) - Seen(B, Rp).
     We drive it with one badge: T14, T14, T15 — entering fires for the
     first sighting in a new room only. *)
  let l = Local_io.create () in
  let _, hits = detect (Local_io.io l) "$Seen(B, Rp); Seen(B, R) - Seen(B, Rp)" in
  let sight t room =
    Local_io.set_time l t;
    ignore (Local_io.signal l "Seen" [ V.Int 7; V.Str room ])
  in
  sight 1.0 "T14";
  sight 2.0 "T14";
  sight 3.0 "T15";
  Local_io.set_time l 4.0;
  (* Occurrences where R <> Rp: the T14->T15 transition; staying in T14
     blocks via the without. *)
  let moves =
    List.filter
      (fun o ->
        List.assoc "R" o.Bead.env <> List.assoc "Rp" o.Bead.env)
      !hits
  in
  checkb "detected entry to T15" true
    (List.exists (fun o -> List.assoc "R" o.Bead.env = V.Str "T15") moves)

let test_together_example () =
  (* fig 6.4 scenario: Roger and Giles both seen in T14. *)
  let l = Local_io.create () in
  let _, hits = detect (Local_io.io l) "$Seen(A, R); $Seen(B, R) - Seen(A, Rp)" in
  Local_io.set_time l 1.0;
  ignore (Local_io.signal l "Seen" [ V.Str "roger"; V.Str "T14" ]);
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l "Seen" [ V.Str "giles"; V.Str "T14" ]);
  Local_io.set_time l 3.0;
  checkb "together detected" true
    (List.exists
       (fun o ->
         List.assoc_opt "A" o.Bead.env = Some (V.Str "roger")
         && List.assoc_opt "B" o.Bead.env = Some (V.Str "giles"))
       !hits)

let test_stop_kills_beads () =
  let l = Local_io.create () in
  let d, hits = detect (Local_io.io l) "$E()" in
  Local_io.set_time l 1.0;
  ignore (Local_io.signal l "E" []);
  checki "one" 1 (List.length !hits);
  Bead.stop d;
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l "E" []);
  checki "stopped" 1 (List.length !hits);
  checki "no live beads" 0 (Bead.live_beads d)

(* --- global view baseline (fig 6.4) --- *)

let test_globalview_blocks_on_slow_source () =
  (* Two meetings; source for room T14 delayed.  The independent (bead)
     detector reports the T15 meeting immediately; the global-view detector
     cannot report anything until the delayed source catches up. *)
  let run detector_wrap =
    let l = Local_io.create () in
    let io = detector_wrap (Local_io.io l) in
    let hits = ref [] in
    let _ =
      Bead.detect io ~start:0.0 (parse_ok "$s15.Seen(A, R); $s15.Seen(B, R) - s15.Seen(A, Rp)")
        ~on_occur:(fun o -> hits := (o, Local_io.now l) :: !hits)
    in
    Local_io.hold_horizon l "s14";
    ignore (Local_io.signal l ~source:"s14" ~stamp:0.1 "Ping" []) (* make s14 known + frozen *);
    Local_io.set_time l 1.0;
    ignore (Local_io.signal l ~source:"s15" "Seen" [ V.Str "roger"; V.Str "T15" ]);
    Local_io.set_time l 2.0;
    ignore (Local_io.signal l ~source:"s15" "Seen" [ V.Str "giles"; V.Str "T15" ]);
    Local_io.set_time l 3.0;
    let detected_by_3 = List.length !hits in
    Local_io.release_horizon l "s14";
    Local_io.set_time l 4.0;
    (detected_by_3, List.length !hits)
  in
  let bead_now, bead_final = run (fun io -> io) in
  let gv_now, gv_final = run Globalview.wrap in
  checkb "bead machine detects despite delayed source" true (bead_now >= 1);
  checki "global view blocked until release" 0 gv_now;
  checkb "both eventually agree" true (bead_final >= 1 && gv_final >= 1)

(* --- aggregation --- *)

let test_aggregate_count () =
  let l = Local_io.create () in
  let prog =
    Aggregate.count_program ~expr:"$Deposit(x)" ~until:"Close()" ~signal:"Total"
  in
  let signalled = ref [] in
  let _ =
    Aggregate.run_program (Local_io.io l) prog ~on_signal:(fun name args ->
        signalled := (name, args) :: !signalled)
  in
  for i = 1 to 4 do
    Local_io.set_time l (float_of_int i);
    ignore (Local_io.signal l "Deposit" [ V.Int (10 * i) ])
  done;
  Local_io.set_time l 5.0;
  ignore (Local_io.signal l "Close" []);
  Local_io.set_time l 6.0;
  checkb "count signalled" true (List.mem ("Total", [ V.Int 4 ]) !signalled)

let test_aggregate_maximum () =
  let l = Local_io.create () in
  let prog =
    Aggregate.maximum_program ~expr:"$Bid(x)" ~param:"x" ~until:"End()" ~signal:"Highest"
  in
  let signalled = ref [] in
  let _ =
    Aggregate.run_program (Local_io.io l) prog ~on_signal:(fun n a -> signalled := (n, a) :: !signalled)
  in
  List.iteri
    (fun i v ->
      Local_io.set_time l (float_of_int (i + 1));
      ignore (Local_io.signal l "Bid" [ V.Int v ]))
    [ 5; 17; 3; 11 ];
  Local_io.set_time l 10.0;
  ignore (Local_io.signal l "End" []);
  checkb "max" true (List.mem ("Highest", [ V.Int 17 ]) !signalled)

let test_aggregate_first_uses_fixed_order () =
  (* §6.9.1: FIRST must wait for the fixed section — the arrival order can
     disagree with occurrence order under delay. *)
  let l = Local_io.create () in
  let prog = Aggregate.first_program ~expr:"$srcA.A() | $srcB.B()" ~signal:"First" in
  let signalled = ref [] in
  let _ =
    Aggregate.run_program (Local_io.io l) prog ~on_signal:(fun n a -> signalled := (n, a) :: !signalled)
  in
  Local_io.hold_horizon l "srcB";
  ignore (Local_io.signal l ~source:"srcB" ~stamp:0.0 "Boot" []);
  (* A arrives first in wall time (stamp 2), but B occurred earlier (stamp 1,
     delayed). *)
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l ~source:"srcA" "A" []);
  Local_io.set_time l 3.0;
  checki "not yet decided" 0 (List.length !signalled);
  ignore (Local_io.signal l ~source:"srcB" ~stamp:1.0 "B" []);
  Local_io.release_horizon l "srcB";
  Local_io.set_time l 4.0;
  checki "exactly one First" 1 (List.length !signalled);
  (* The winner is the stamp-1 occurrence (1000 ms). *)
  checkb "chronologically first wins" true (List.mem ("First", [ V.Int 1000 ]) !signalled)

let test_aggregate_program_parse_error () =
  checkb "missing expr" true
    (match Aggregate.parse_program "event: x = 1" with
    | exception Aggregate.Program_error _ -> true
    | _ -> false)

let test_aggregate_custom_program () =
  let l = Local_io.create () in
  let prog =
    Aggregate.parse_program
      {|
int total = 0; int n = 0;
expr: $Sample(v)
until: Done()
event: { total = total + new.v; n = n + 1 }
end: if (n > 0) signal Mean(total / n)
|}
  in
  let signalled = ref [] in
  let _ =
    Aggregate.run_program (Local_io.io l) prog ~on_signal:(fun name args ->
        signalled := (name, args) :: !signalled)
  in
  List.iteri
    (fun i v ->
      Local_io.set_time l (float_of_int (i + 1));
      ignore (Local_io.signal l "Sample" [ V.Int v ]))
    [ 10; 20; 30 ];
  Local_io.set_time l 5.0;
  ignore (Local_io.signal l "Done" []);
  checkb "mean computed" true (List.mem ("Mean", [ V.Int 20 ]) !signalled)

let test_aggregate_once_arrival_order () =
  (* §6.11.3: ONCE reports on arrival order — no fixed-section wait. *)
  let l = Local_io.create () in
  let prog = Aggregate.once_program ~expr:"$srcA.A() | $srcB.B()" ~signal:"Once" in
  let signalled = ref [] in
  let _ =
    Aggregate.run_program (Local_io.io l) prog ~on_signal:(fun n a -> signalled := (n, a) :: !signalled)
  in
  Local_io.hold_horizon l "srcB";
  ignore (Local_io.signal l ~source:"srcB" ~stamp:0.0 "Boot" []);
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l ~source:"srcA" "A" []);
  (* Unlike FIRST, ONCE has already decided — even though srcB's horizon is
     frozen and an earlier B could still arrive. *)
  checki "decided immediately" 1 (List.length !signalled);
  ignore (Local_io.signal l ~source:"srcB" ~stamp:1.0 "B" []);
  Local_io.release_horizon l "srcB";
  Local_io.set_time l 3.0;
  checki "still exactly one" 1 (List.length !signalled)

let test_aggregate_var_section_alias () =
  (* The paper spells the fixed-portion section "var:" (§6.10). *)
  let l = Local_io.create () in
  let prog =
    Aggregate.parse_program
      {|
int n = 0;
expr: $E()
until: Done()
var: n = n + 1
end: signal Fixed(n)
|}
  in
  let signalled = ref [] in
  let _ =
    Aggregate.run_program (Local_io.io l) prog ~on_signal:(fun name args ->
        signalled := (name, args) :: !signalled)
  in
  Local_io.set_time l 1.0;
  ignore (Local_io.signal l "E" []);
  Local_io.set_time l 2.0;
  ignore (Local_io.signal l "E" []);
  Local_io.set_time l 3.0;
  ignore (Local_io.signal l "Done" []);
  checkb "var: section ran per fixed occurrence" true
    (List.mem ("Fixed", [ V.Int 2 ]) !signalled)

let test_aggregate_queue_length () =
  let l = Local_io.create () in
  let agg =
    Aggregate.aggregate (Local_io.io l) (parse_ok "$srcA.E()")
      {
        Aggregate.on_event = (fun _ -> ());
        on_fixed = (fun _ -> ());
        on_end = (fun () -> ());
      }
  in
  Local_io.hold_horizon l "srcA";
  ignore (Local_io.signal l ~source:"srcA" ~stamp:0.0 "Boot" []);
  Local_io.set_time l 1.0;
  ignore (Local_io.signal l ~source:"srcA" ~stamp:1.0 "E" []);
  checkb "queued while horizon frozen" true (Aggregate.queue_length agg >= 1);
  Local_io.release_horizon l "srcA";
  checki "drained" 0 (Aggregate.queue_length agg);
  Aggregate.stop agg

let () =
  Alcotest.run "composite"
    [
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "together example" `Quick test_parse_together_example;
          Alcotest.test_case "trapped example" `Quick test_parse_trapped_example;
          Alcotest.test_case "squash EndOfPoint" `Quick test_parse_squash_endofpoint;
          Alcotest.test_case "side expressions" `Quick test_parse_side_expressions;
          Alcotest.test_case "side assignment with @" `Quick test_parse_side_assignment_with_now;
          Alcotest.test_case "delay parameter" `Quick test_parse_delay_parameter;
          Alcotest.test_case "probability parameter" `Quick test_parse_probability_parameter;
          Alcotest.test_case "source-pinned template" `Quick test_parse_source_pinned_template;
          Alcotest.test_case "null" `Quick test_parse_null;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
        ] );
      ( "beads",
        [
          Alcotest.test_case "base first match only" `Quick test_base_first_match_only;
          Alcotest.test_case "sequence" `Quick test_sequence;
          Alcotest.test_case "sequence var flow" `Quick test_sequence_var_flow;
          Alcotest.test_case "or both branches" `Quick test_or_both_branches;
          Alcotest.test_case "whenever repeats" `Quick test_whenever_repeats;
          Alcotest.test_case "whenever null terminates" `Quick test_whenever_null_terminates;
          Alcotest.test_case "without blocks" `Quick test_without_blocks;
          Alcotest.test_case "without fires" `Quick test_without_fires;
          Alcotest.test_case "without waits for horizon" `Quick test_without_waits_for_horizon;
          Alcotest.test_case "without release fires" `Quick test_without_horizon_release_fires;
          Alcotest.test_case "without delay parameter" `Quick test_without_delay_parameter;
          Alcotest.test_case "side expression filters" `Quick test_side_expression_filters;
          Alcotest.test_case "initial env constrains" `Quick test_initial_env_constrains;
          Alcotest.test_case "Enters example" `Quick test_enters_example;
          Alcotest.test_case "Together example" `Quick test_together_example;
          Alcotest.test_case "stop kills beads" `Quick test_stop_kills_beads;
        ] );
      ( "globalview",
        [ Alcotest.test_case "blocks on slow source (fig 6.4)" `Quick test_globalview_blocks_on_slow_source ] );
      ( "aggregate",
        [
          Alcotest.test_case "count" `Quick test_aggregate_count;
          Alcotest.test_case "maximum" `Quick test_aggregate_maximum;
          Alcotest.test_case "first uses fixed order" `Quick test_aggregate_first_uses_fixed_order;
          Alcotest.test_case "program parse error" `Quick test_aggregate_program_parse_error;
          Alcotest.test_case "custom program" `Quick test_aggregate_custom_program;
          Alcotest.test_case "var: section alias" `Quick test_aggregate_var_section_alias;
          Alcotest.test_case "once (arrival order)" `Quick test_aggregate_once_arrival_order;
          Alcotest.test_case "queue length" `Quick test_aggregate_queue_length;
        ] );
    ]
