lib/rdl/ty.mli: Format Value
