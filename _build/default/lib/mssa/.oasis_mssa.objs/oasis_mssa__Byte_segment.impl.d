lib/mssa/byte_segment.ml: Buffer Format Hashtbl Oasis_core Oasis_rdl String
