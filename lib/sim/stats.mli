(** Per-category traffic and operation accounting.

    Several experiments (E2, E6, E7, E11 in DESIGN.md) compare message counts
    and bytes between schemes; every network send and every interesting
    operation increments a named counter here. *)

type t

val create : unit -> t
val incr : t -> ?n:int -> string -> unit
val add_bytes : t -> string -> int -> unit
val observe : t -> string -> int -> unit
(** [observe t cat n] records one sample of value [n] under [cat]: the
    category's count becomes the number of samples, its bytes the running
    sum, and [max_of] the largest sample.  Used as a poor-man's gauge for
    batch sizes alongside the plain message counters. *)

val count : t -> string -> int

val max_of : t -> string -> int
(** Largest value passed to {!observe} for the category (0 if none). *)

val bytes : t -> string -> int
val reset : t -> unit

val categories : t -> string list
(** Sorted list of categories seen since the last reset. *)

val report : t -> (string * int * int) list
(** [(category, count, bytes)] rows, sorted by category. *)

val pp : Format.formatter -> t -> unit
