module Net = Oasis_sim.Net
module Engine = Oasis_sim.Engine
module Clock = Oasis_sim.Clock
module Trace = Oasis_sim.Trace

(* Each item carries the trace context that was ambient when its event was
   signalled: a coalesced event sits in [ss_pending] until the heartbeat
   tick, by which time the ambient context at the flushing [Net.send] is the
   tick's, not the signaller's — restoring the per-item context around the
   client callback keeps causality through the batching. *)
type item = int * Event.t * Trace.ctx option

type delivery = { d_seq : int; d_items : item list; d_horizon : float }

(* Client-side registration state.  The template is kept so the session can
   re-register after a reconnection; [cr_last_seen] (the highest event seq
   processed) makes replayed/retried deliveries exactly-once per
   registration — server event seqs are monotone and survive crashes. *)
type creg = {
  cr_tpl : Event.template;
  cr_cb : Event.t -> unit;
  mutable cr_floor : float;  (* replay floor: original ~since, or horizon at registration *)
  mutable cr_last_seen : int;
}

type session = {
  s_net : Net.t;
  s_host : Net.host;
  s_server : server;
  s_creds : string list;
  mutable s_id : int;
  mutable s_callbacks : (int * creg) list;
  mutable s_horizon : float;
  mutable s_last_seq : int;  (* last in-order delivery seq processed *)
  s_pending : (int, delivery) Hashtbl.t;  (* held out-of-order deliveries *)
  mutable s_stale : bool;
  mutable s_last_rx : float;  (* true time of last traffic; local measure *)
  mutable s_hb_seen : int;
  (* Horizon advances stashed while deliveries are known to be missing: the
     pair is (best horizon seen, delivery seq it is contingent on).  Without
     this, a heartbeat racing a resent event could release a [without]
     candidate that a late blocker should kill. *)
  mutable s_stash_horizon : float;
  mutable s_stash_upto : int;
  mutable s_on_horizon : (float -> unit) list;
  mutable s_on_stale : (bool -> unit) list;
  mutable s_closed : bool;
  mutable s_reconnecting : bool;
  mutable s_stale_timer : Engine.timer option;
  mutable s_next_reg : int;
}

and sess_srv = {
  ss_id : int;
  ss_client : session;
  ss_host : Net.host;
  mutable ss_regs : (int * Event.template) list;
  mutable ss_seq : int;  (* next delivery stream seq *)
  ss_buffer : (int, delivery) Hashtbl.t;  (* unacked deliveries *)
  mutable ss_pending : item list;  (* coalesced, reverse order *)
  mutable ss_acked : int;
  mutable ss_missed_acks : int;
  mutable ss_live : bool;
}

and server = {
  b_net : Net.t;
  b_host : Net.host;
  b_name : string;
  b_heartbeat : float;
  b_ack_every : int;
  b_retention : float;
  b_horizon_lag : float;
  mutable b_seq : int;
  mutable b_last_stamp : float;
  mutable b_sessions : sess_srv list;
  b_retained : (float * Event.t) Queue.t;  (* (true_time_added, event) *)
  mutable b_admission : credentials:string list -> bool;
  mutable b_reg_filter : credentials:string list -> Event.template -> Event.template option;
  mutable b_next_session : int;
  b_creds : (int, string list) Hashtbl.t;  (* session id -> credentials *)
  b_coalesce : bool;
  mutable b_on_tick : (unit -> unit) list;
  mutable b_hb_timer : Engine.timer option;
  mutable b_stopped : bool;
  b_wal : Oasis_store.Wal.t option;  (* durable retained-event log *)
  mutable b_wal_signals : int;  (* appends since last compaction *)
}

type registration = {
  r_session : session;
  r_id : int;
  mutable r_active : bool;
}

let server_name srv = srv.b_name
let server_host srv = srv.b_host
let server_heartbeat srv = srv.b_heartbeat
let sessions srv = List.length srv.b_sessions
let session_server s = s.s_server

let purge_retained srv =
  let now = Engine.now (Net.engine srv.b_net) in
  let rec go () =
    match Queue.peek_opt srv.b_retained with
    | Some (t, _) when now -. t > srv.b_retention ->
        ignore (Queue.pop srv.b_retained);
        go ()
    | _ -> ()
  in
  go ()

(* --- durable retained-event log codec (used with [~disk]) ---

   One WAL record per retained event.  Fields are joined with ['\x1f'];
   strings are hex-encoded so arbitrary payload bytes cannot collide with
   the separator, and floats use the hexadecimal [%h] form for exact
   round-trips.  The decoder is total: a record it cannot parse is
   skipped (the WAL framing already discards torn bytes, so this only
   guards against a log written by a different version). *)

let hex_enc = Oasis_util.Hex.encode
let hex_dec = Oasis_util.Hex.decode

let encode_retained (t, (e : Event.t)) =
  String.concat "\x1f"
    [
      Printf.sprintf "%h" t;
      hex_enc e.Event.name;
      hex_enc e.Event.source;
      Printf.sprintf "%h" e.Event.stamp;
      string_of_int e.Event.seq;
      String.concat "\x1e"
        (Array.to_list (Array.map (fun v -> hex_enc (Oasis_rdl.Value.marshal v)) e.Event.params));
    ]

let decode_retained line =
  match String.split_on_char '\x1f' line with
  | [ t; name; source; stamp; seq; params ] ->
      let ( let* ) = Option.bind in
      let* t = float_of_string_opt t in
      let* name = hex_dec name in
      let* source = hex_dec source in
      let* stamp = float_of_string_opt stamp in
      let* seq = int_of_string_opt seq in
      let param_fields = if params = "" then [] else String.split_on_char '\x1e' params in
      let rec decode_params acc = function
        | [] -> Some (List.rev acc)
        | p :: rest ->
            let* raw = hex_dec p in
            let* v = Oasis_rdl.Value.unmarshal raw in
            decode_params (v :: acc) rest
      in
      let* params = decode_params [] param_fields in
      Some (t, Event.make ~name ~source ~stamp ~seq params)
  | _ -> None

let rec create_server net host ~name ?(heartbeat = 1.0) ?(ack_every = 4) ?(retention = 10.0)
    ?(horizon_lag = 0.0) ?(coalesce = false) ?disk () =
  let wal =
    match disk with
    | None -> None
    | Some disk ->
        Some (Oasis_store.Wal.create disk ~file:(Printf.sprintf "broker.%s.wal" name) ())
  in
  let srv =
    {
      b_net = net;
      b_host = host;
      b_name = name;
      b_heartbeat = heartbeat;
      b_ack_every = ack_every;
      b_retention = retention;
      b_horizon_lag = horizon_lag;
      b_seq = 0;
      b_last_stamp = neg_infinity;
      b_sessions = [];
      b_retained = Queue.create ();
      b_admission = (fun ~credentials:_ -> true);
      b_reg_filter = (fun ~credentials:_ tpl -> Some tpl);
      b_next_session = 0;
      b_creds = Hashtbl.create 8;
      b_coalesce = coalesce;
      b_on_tick = [];
      b_hb_timer = None;
      b_stopped = false;
      b_wal = wal;
      b_wal_signals = 0;
    }
  in
  (* A host crash loses the server's volatile state: live sessions and
     their delivery buffers.  Without [~disk] the retained-event log is
     assumed to sit on stable storage and survives by fiat; with [~disk]
     it lives in the simulated device's WAL, so the in-memory copy is
     dropped here and rebuilt from the durable bytes on restart (events
     whose group commit had not completed are genuinely lost — the
     durability window the e17 experiment measures).  The monotone
     event-seq / session-id / stamp counters survive either way (tiny
     NVRAM: a restart must not reuse identifiers still held by old
     clients). *)
  Net.on_crash net host (fun () ->
      srv.b_sessions <- [];
      Hashtbl.reset srv.b_creds;
      if Option.is_some srv.b_wal then Queue.clear srv.b_retained);
  (match wal with
  | None -> ()
  | Some w ->
      Net.on_restart net host (fun () ->
          Queue.clear srv.b_retained;
          List.iter
            (fun line ->
              match decode_retained line with
              | Some (t, e) ->
                  Queue.push (t, e) srv.b_retained;
                  if e.Event.seq >= srv.b_seq then srv.b_seq <- e.Event.seq + 1;
                  if e.Event.stamp > srv.b_last_stamp then srv.b_last_stamp <- e.Event.stamp
              | None -> ())
            (Oasis_store.Wal.recover w);
          purge_retained srv;
          srv.b_wal_signals <- 0));
  (* Heartbeats to every live session.  Tick hooks run first, so payloads
     they produce (e.g. a service's invalidation digest) are matched into
     the per-session coalesce buffers and ride this very tick; a session
     with pending coalesced items then gets ONE message that both delivers
     the batch and beats the heart, keeping steady-state traffic O(peers)
     per period rather than O(events). *)
  let engine = Net.engine net in
  srv.b_hb_timer <-
    Some
      (Engine.every engine ~tag:("t:" ^ Net.host_name host) ~period:heartbeat (fun () ->
           if (not srv.b_stopped) && Net.host_up net host then begin
             List.iter (fun f -> f ()) (List.rev srv.b_on_tick);
             let horizon = Clock.read (Net.host_clock host) -. srv.b_horizon_lag in
             List.iter
               (fun ss ->
                 if ss.ss_live then begin
                   (* A server drops a client that has not acknowledged for a
                      long period (§4.10: "can assume that it is no longer
                      running"). *)
                   ss.ss_missed_acks <- ss.ss_missed_acks + 1;
                   if ss.ss_missed_acks > 8 * srv.b_ack_every then begin
                     ss.ss_live <- false;
                     srv.b_sessions <- List.filter (fun s -> s != ss) srv.b_sessions
                   end
                   else
                     let client = ss.ss_client in
                     let sid = ss.ss_id in
                     match ss.ss_pending with
                     | [] ->
                         let upto = ss.ss_seq - 1 in
                         Net.send net ~category:"evt.heartbeat" ~size:24 ~src:host
                           ~dst:ss.ss_host (fun () -> client_heartbeat client sid horizon upto)
                     | pending ->
                         let items = List.rev pending in
                         ss.ss_pending <- [];
                         (* Buffer under the next stream seq exactly like an
                            immediate delivery, so nack/resend and ack pruning
                            see nothing unusual. *)
                         let d = { d_seq = ss.ss_seq; d_items = items; d_horizon = horizon } in
                         ss.ss_seq <- ss.ss_seq + 1;
                         Hashtbl.replace ss.ss_buffer d.d_seq d;
                         let upto = ss.ss_seq - 1 in
                         Net.send net ~category:"evt.heartbeat"
                           ~size:(24 + (64 * List.length items))
                           ~src:host ~dst:ss.ss_host
                           (fun () ->
                             client_deliver client sid d;
                             client_heartbeat client sid horizon upto)
                 end)
               srv.b_sessions
           end));
  srv

(* Traffic from a superseded server-side incarnation (the client has since
   reconnected, or a reconnect it never heard about succeeded server-side)
   must not touch the current stream: sequence numbers restart per
   incarnation, so mixing them would corrupt gap detection and ack
   pruning.  Both heartbeats and deliveries therefore carry the session id
   they were emitted for, and the client drops mismatches. *)
and client_heartbeat s sid horizon upto =
  if (not s.s_closed) && sid = s.s_id then begin
    rx s;
    s.s_hb_seen <- s.s_hb_seen + 1;
    if s.s_last_seq >= upto then advance_horizon s horizon
    else begin
      (* Deliveries outstanding: the horizon is only safe once they land. *)
      if horizon > s.s_stash_horizon then begin
        s.s_stash_horizon <- horizon;
        s.s_stash_upto <- max s.s_stash_upto upto
      end;
      let srv = s.s_server in
      let from = s.s_last_seq + 1 in
      Net.send s.s_net ~category:"evt.nack" ~size:16 ~src:s.s_host ~dst:srv.b_host (fun () ->
          server_nack srv sid from)
    end;
    if s.s_hb_seen mod s.s_server.b_ack_every = 0 then
      let last = s.s_last_seq in
      let srv = s.s_server in
      Net.send s.s_net ~category:"evt.ack" ~size:16 ~src:s.s_host ~dst:srv.b_host (fun () ->
          server_ack srv sid last)
  end

and rx s =
  s.s_last_rx <- Engine.now (Net.engine s.s_net);
  if s.s_stale then begin
    s.s_stale <- false;
    List.iter (fun f -> f false) s.s_on_stale;
    (* Resynchronise: ask the server to resend anything we missed. *)
    let srv = s.s_server in
    let sid = s.s_id in
    let from = s.s_last_seq + 1 in
    Net.send s.s_net ~category:"evt.nack" ~size:16 ~src:s.s_host ~dst:srv.b_host (fun () ->
        server_nack srv sid from)
  end

and advance_horizon s h =
  if h > s.s_horizon then begin
    s.s_horizon <- h;
    List.iter (fun f -> f h) s.s_on_horizon
  end

and server_ack srv sid last =
  match List.find_opt (fun ss -> ss.ss_id = sid) srv.b_sessions with
  | None -> ()
  | Some ss ->
      ss.ss_missed_acks <- 0;
      if last > ss.ss_acked then begin
        for seq = ss.ss_acked + 1 to last do
          Hashtbl.remove ss.ss_buffer seq
        done;
        ss.ss_acked <- last
      end

and server_nack srv sid from =
  match List.find_opt (fun ss -> ss.ss_id = sid) srv.b_sessions with
  | None -> ()
  | Some ss ->
      let seqs = Hashtbl.fold (fun k _ acc -> if k >= from then k :: acc else acc) ss.ss_buffer [] in
      List.iter
        (fun seq ->
          (* Total even if the buffer entry vanished between the snapshot
             and this send (an ack pruning it, or adversarial reorderings
             the model checker drives): a missing delivery is simply no
             longer resendable — account it, never raise. *)
          match Hashtbl.find_opt ss.ss_buffer seq with
          | None -> Oasis_sim.Stats.incr (Net.stats srv.b_net) "evt.resend.gone"
          | Some d ->
              let client = ss.ss_client in
              Net.send srv.b_net ~category:"evt.resend" ~size:(64 * List.length d.d_items)
                ~src:srv.b_host ~dst:ss.ss_host (fun () -> client_deliver client ss.ss_id d))
        (List.sort Int.compare seqs)

and client_deliver s sid d =
  if (not s.s_closed) && sid = s.s_id then begin
    rx s;
    if d.d_seq <= s.s_last_seq then () (* duplicate *)
    else if d.d_seq = s.s_last_seq + 1 then begin
      process_delivery s d;
      let last_horizon = ref d.d_horizon in
      (* Drain any held out-of-order deliveries that are now in order. *)
      let rec drain () =
        match Hashtbl.find_opt s.s_pending (s.s_last_seq + 1) with
        | Some next ->
            Hashtbl.remove s.s_pending next.d_seq;
            process_delivery s next;
            last_horizon := next.d_horizon;
            drain ()
        | None -> ()
      in
      drain ();
      (* An in-order horizon is safe: everything the server sent before it
         has been processed.  Release any stashed heartbeat horizon that was
         waiting on these deliveries. *)
      advance_horizon s !last_horizon;
      if s.s_last_seq >= s.s_stash_upto then advance_horizon s s.s_stash_horizon
    end
    else begin
      (* Out of order: hold, stash the horizon contingent on the gap, nack. *)
      Hashtbl.replace s.s_pending d.d_seq d;
      if d.d_horizon > s.s_stash_horizon then begin
        s.s_stash_horizon <- d.d_horizon;
        s.s_stash_upto <- max s.s_stash_upto d.d_seq
      end;
      let srv = s.s_server in
      let from = s.s_last_seq + 1 in
      Net.send s.s_net ~category:"evt.nack" ~size:16 ~src:s.s_host ~dst:srv.b_host (fun () ->
          server_nack srv sid from)
    end
  end

and process_delivery s d =
  s.s_last_seq <- d.d_seq;
  let tracer = Net.trace s.s_net in
  List.iter
    (fun (reg_id, event, ctx) ->
      match List.assoc_opt reg_id s.s_callbacks with
      | Some cr ->
          (* Event seqs are monotone per server and survive restarts, so
             this suppresses duplicates introduced by retries, re-sent
             registrations and reconnection replays. *)
          if event.Event.seq > cr.cr_last_seen then begin
            cr.cr_last_seen <- event.Event.seq;
            match ctx with
            | None -> cr.cr_cb event
            | Some _ -> Trace.with_ctx tracer ctx (fun () -> cr.cr_cb event)
          end
      | None -> () (* deregistered while in flight *))
    d.d_items

let on_heartbeat_tick srv f = srv.b_on_tick <- f :: srv.b_on_tick

let set_admission srv f = srv.b_admission <- f
let set_registration_filter srv f = srv.b_reg_filter <- f

let server_horizon srv =
  Clock.read (Net.host_clock srv.b_host) -. srv.b_horizon_lag

let push_delivery srv ss items =
  let d = { d_seq = ss.ss_seq; d_items = items; d_horizon = server_horizon srv } in
  ss.ss_seq <- ss.ss_seq + 1;
  Hashtbl.replace ss.ss_buffer d.d_seq d;
  let client = ss.ss_client in
  Net.send srv.b_net ~category:"evt.deliver" ~size:(48 + (64 * List.length items))
    ~src:srv.b_host ~dst:ss.ss_host (fun () -> client_deliver client ss.ss_id d)

let signal srv ?stamp name params =
  let stamp =
    match stamp with
    | Some s -> s
    | None ->
        (* Monotone stamps keep the advertised horizon honest. *)
        let c = Clock.read (Net.host_clock srv.b_host) in
        max c (srv.b_last_stamp +. 1e-9)
  in
  srv.b_last_stamp <- max srv.b_last_stamp stamp;
  let event = Event.make ~name ~source:srv.b_name ~stamp ~seq:srv.b_seq params in
  srv.b_seq <- srv.b_seq + 1;
  purge_retained srv;
  let now = Engine.now (Net.engine srv.b_net) in
  Queue.push (now, event) srv.b_retained;
  (match srv.b_wal with
  | None -> ()
  | Some w ->
      Oasis_store.Wal.append w (encode_retained (now, event));
      srv.b_wal_signals <- srv.b_wal_signals + 1;
      (* Compaction: the log otherwise grows without bound while the
         in-memory queue stays at one retention window; rewrite it to the
         currently-retained suffix every so often (atomic, crash-safe). *)
      if srv.b_wal_signals >= 256 then begin
        srv.b_wal_signals <- 0;
        let records =
          Queue.fold (fun acc it -> encode_retained it :: acc) [] srv.b_retained |> List.rev
        in
        Oasis_store.Wal.rewrite w records (fun () -> ())
      end);
  List.iter
    (fun ss ->
      if ss.ss_live then
        let ctx = Trace.current (Net.trace srv.b_net) in
        let items =
          List.filter_map
            (fun (reg_id, tpl) ->
              match Event.matches tpl event with
              | Some _ -> Some (reg_id, event, ctx)
              | None -> None)
            ss.ss_regs
        in
        if items <> [] then
          if srv.b_coalesce then
            (* Hold for the next heartbeat tick; [rev_append] keeps the
               buffer in reverse-chronological order so the flush can
               restore chronology with one [List.rev]. *)
            ss.ss_pending <- List.rev_append items ss.ss_pending
          else push_delivery srv ss items)
    srv.b_sessions;
  event

(* --- client operations --- *)

let find_sess srv sid = List.find_opt (fun ss -> ss.ss_id = sid) srv.b_sessions

(* Server-side session establishment, shared by first connects and
   reconnections.  [replacing] cleans up the caller's previous incarnation
   so a reconnect after a network (rather than server) failure does not
   leave a zombie session accumulating missed acks. *)
let attach srv ~host ~credentials ~session ?replacing () =
  if srv.b_stopped then Error "server stopped"
  else if not (srv.b_admission ~credentials) then Error "admission denied"
  else begin
    (match replacing with
    | Some old ->
        srv.b_sessions <- List.filter (fun ss -> ss.ss_id <> old) srv.b_sessions;
        Hashtbl.remove srv.b_creds old
    | None -> ());
    let id = srv.b_next_session in
    srv.b_next_session <- id + 1;
    Hashtbl.replace srv.b_creds id credentials;
    let ss =
      {
        ss_id = id;
        ss_client = session;
        ss_host = host;
        ss_regs = [];
        ss_seq = 0;
        ss_buffer = Hashtbl.create 16;
        ss_pending = [];
        ss_acked = -1;
        ss_missed_acks = 0;
        ss_live = true;
      }
    in
    srv.b_sessions <- ss :: srv.b_sessions;
    Ok id
  end

(* The wire half of registration.  Reliable: a lost registration would
   leave the session deaf to matching events with nothing downstream to
   notice, so it rides [rpc_retry].  The handler is idempotent at the
   server (a re-sent registration replaces, not duplicates) and client-side
   duplicate suppression makes any resulting replay exactly-once, so
   retries are safe. *)
let send_register session ?since reg_id tpl =
  let srv = session.s_server in
  let sid = session.s_id in
  Net.rpc_retry session.s_net ~category:"evt.register" ~size:96 ~src:session.s_host
    ~dst:srv.b_host
    (fun () ->
      match find_sess srv sid with
      | None -> Ok ()
      | Some ss -> (
          let credentials = Option.value ~default:[] (Hashtbl.find_opt srv.b_creds sid) in
          match srv.b_reg_filter ~credentials tpl with
          | None -> Ok () (* policy rejected: the client simply never hears events *)
          | Some tpl ->
              ss.ss_regs <- (reg_id, tpl) :: List.remove_assoc reg_id ss.ss_regs;
              (* Retrospective registration: replay retained matching events
                 from [since] in stamp order (§6.8.1). *)
              (match since with
              | None -> ()
              | Some since ->
                  purge_retained srv;
                  let replay =
                    Queue.fold
                      (fun acc (_, e) ->
                        if e.Event.stamp >= since && Event.matches tpl e <> None then e :: acc
                        else acc)
                      [] srv.b_retained
                    |> List.rev
                  in
                  if replay <> [] then
                    push_delivery srv ss (List.map (fun e -> (reg_id, e, None)) replay));
              Ok ()))
    (fun (_ : (unit, string) result) -> ())

(* Bind the session to a fresh server-side incarnation and re-register
   everything retrospectively from the last safe horizon, so no retained
   event is lost across a server crash (§4.10 recovery). *)
let rebind session id =
  session.s_id <- id;
  session.s_last_seq <- -1;
  Hashtbl.reset session.s_pending;
  session.s_stash_horizon <- neg_infinity;
  session.s_stash_upto <- -1;
  rx session;
  (* recovery callbacks (e.g. external-record rereads) fired by [rx] *)
  List.iter
    (fun (reg_id, cr) ->
      let since = Float.max cr.cr_floor session.s_horizon in
      send_register session ~since reg_id cr.cr_tpl)
    (List.rev session.s_callbacks)

let try_reconnect session =
  session.s_reconnecting <- true;
  let srv = session.s_server in
  let old_id = session.s_id in
  Net.rpc_retry session.s_net ~category:"evt.reconnect"
    ~size:(64 + (16 * List.length session.s_creds))
    ~timeout:srv.b_heartbeat ~attempts:4
    ~backoff:(srv.b_heartbeat /. 4.0)
    ~src:session.s_host ~dst:srv.b_host
    (fun () ->
      attach srv ~host:session.s_host ~credentials:session.s_creds ~session ~replacing:old_id
        ())
    (fun result ->
      session.s_reconnecting <- false;
      match result with
      | Error _ -> () (* still unreachable: the staleness timer tries again *)
      | Ok id -> if not session.s_closed then rebind session id)

let connect net host srv ?(credentials = []) ~on_result () =
  let session =
    {
      s_net = net;
      s_host = host;
      s_server = srv;
      s_creds = credentials;
      s_id = -1;
      s_callbacks = [];
      s_horizon = neg_infinity;
      s_last_seq = -1;
      s_pending = Hashtbl.create 4;
      s_stale = false;
      s_last_rx = Engine.now (Net.engine net);
      s_hb_seen = 0;
      s_stash_horizon = neg_infinity;
      s_stash_upto = -1;
      s_on_horizon = [];
      s_on_stale = [];
      s_closed = false;
      s_reconnecting = false;
      s_stale_timer = None;
      s_next_reg = 0;
    }
  in
  Net.rpc net ~category:"evt.connect" ~size:(64 + (16 * List.length credentials)) ~src:host
    ~dst:srv.b_host
    (fun () -> attach srv ~host ~credentials ~session ())
    (fun result ->
      match result with
      | Error e -> on_result (Error e)
      | Ok id ->
          session.s_id <- id;
          (* Staleness detector: a local timer, needing no server traffic.
             Prolonged staleness means the server has probably lost this
             session (host crash, §4.10): reconnect with backoff and
             re-register retrospectively from the last horizon. *)
          let engine = Net.engine net in
          session.s_stale_timer <-
            Some
              (Engine.every engine
                 ~tag:("t:" ^ Net.host_name session.s_host)
                 ~period:(srv.b_heartbeat /. 2.0)
                 (fun () ->
                   if (not session.s_closed) && Net.host_up net session.s_host then begin
                     let silent = Engine.now engine -. session.s_last_rx in
                     if (not session.s_stale) && silent > 1.5 *. srv.b_heartbeat then begin
                       session.s_stale <- true;
                       List.iter (fun f -> f true) session.s_on_stale
                     end;
                     if
                       session.s_stale
                       && (not session.s_reconnecting)
                       && silent > 3.0 *. srv.b_heartbeat
                     then try_reconnect session
                   end));
          on_result (Ok session))

let register session ?since tpl callback =
  let reg_id = session.s_next_reg in
  session.s_next_reg <- reg_id + 1;
  let cr =
    {
      cr_tpl = tpl;
      cr_cb = callback;
      cr_floor = (match since with Some s -> s | None -> session.s_horizon);
      cr_last_seen = -1;
    }
  in
  session.s_callbacks <- (reg_id, cr) :: session.s_callbacks;
  send_register session ?since reg_id tpl;
  { r_session = session; r_id = reg_id; r_active = true }

let deregister reg =
  if reg.r_active then begin
    reg.r_active <- false;
    let session = reg.r_session in
    session.s_callbacks <- List.remove_assoc reg.r_id session.s_callbacks;
    let srv = session.s_server in
    let sid = session.s_id in
    let reg_id = reg.r_id in
    Net.send session.s_net ~category:"evt.deregister" ~size:16 ~src:session.s_host
      ~dst:srv.b_host (fun () ->
        match find_sess srv sid with
        | None -> ()
        | Some ss -> ss.ss_regs <- List.remove_assoc reg_id ss.ss_regs)
  end

let pre_register session tpl =
  let srv = session.s_server in
  Net.send session.s_net ~category:"evt.preregister" ~size:96 ~src:session.s_host
    ~dst:srv.b_host (fun () ->
      (* Retention is server-wide and shared between clients (§6.8.1), so
         pre-registration costs the server nothing extra per client; it is
         accounted so experiments can compare traffic. *)
      ignore tpl)

let horizon session = session.s_horizon
let stale session = session.s_stale
let on_horizon session f = session.s_on_horizon <- f :: session.s_on_horizon
let on_staleness session f = session.s_on_stale <- f :: session.s_on_stale

let close session =
  if not session.s_closed then begin
    session.s_closed <- true;
    (match session.s_stale_timer with
    | Some tm ->
        Engine.cancel tm;
        session.s_stale_timer <- None
    | None -> ());
    let srv = session.s_server in
    let sid = session.s_id in
    Net.send session.s_net ~category:"evt.close" ~size:16 ~src:session.s_host ~dst:srv.b_host
      (fun () -> srv.b_sessions <- List.filter (fun ss -> ss.ss_id <> sid) srv.b_sessions)
  end

let shutdown_server srv =
  if not srv.b_stopped then begin
    srv.b_stopped <- true;
    (match srv.b_hb_timer with
    | Some tm ->
        Engine.cancel tm;
        srv.b_hb_timer <- None
    | None -> ());
    srv.b_sessions <- [];
    Hashtbl.reset srv.b_creds
  end

let server_buffered srv =
  List.fold_left (fun acc ss -> acc + Hashtbl.length ss.ss_buffer) 0 srv.b_sessions

let server_retained srv =
  purge_retained srv;
  Queue.length srv.b_retained

(* --- state fingerprint (model checking) --- *)

let fp_key = Oasis_util.Siphash.key_of_string "oasis.broker.fingerprint"

let fingerprint srv =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%d,%h,%d,%b;" srv.b_seq srv.b_last_stamp srv.b_next_session srv.b_stopped);
  Queue.iter
    (fun entry ->
      Buffer.add_string b (encode_retained entry);
      Buffer.add_char b '\x1d')
    srv.b_retained;
  List.iter
    (fun ss ->
      Buffer.add_string b
        (Printf.sprintf "s%d:%d:%d:%b:" ss.ss_id ss.ss_seq ss.ss_acked ss.ss_live);
      let seqs =
        Hashtbl.fold (fun k _ acc -> k :: acc) ss.ss_buffer [] |> List.sort Int.compare
      in
      List.iter
        (fun s ->
          Buffer.add_string b (string_of_int s);
          Buffer.add_char b ',')
        seqs;
      Buffer.add_string b (string_of_int (List.length ss.ss_pending));
      Buffer.add_char b ';')
    (List.sort (fun a c -> Int.compare a.ss_id c.ss_id) srv.b_sessions);
  Oasis_util.Siphash.hash fp_key (Buffer.contents b)
