lib/rdl/infer.mli: Ast Hashtbl Stdlib Ty
