(** Deterministic pseudo-random number generation (splitmix64).

    All randomness in the simulator flows through an explicit [t] so that
    every experiment is reproducible from its seed. *)

type t

val create : int64 -> t
(** [create seed] returns an independent generator. *)

val copy : t -> t
(** [copy g] duplicates the generator state. *)

val split : t -> t
(** [split g] derives a new, statistically independent generator from [g],
    advancing [g]. Used to give each host its own stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val draws : t -> int
(** Number of raw 64-bit words drawn since {!create} (or since {!split}
    returned this generator).  The model checker compares the counter
    around an event's execution to learn whether the event touched the
    shared stream — such events cannot commute with other drawing events,
    since reordering them would permute the stream. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean; used for
    inter-arrival times of workload generators. *)

val uniform_in : t -> lo:float -> hi:float -> float

val zipf : t -> n:int -> s:float -> int
(** [zipf g ~n ~s] samples a rank in [\[0, n)] from a Zipf distribution with
    exponent [s] (room/file popularity in workloads). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)
