module Prng = Oasis_util.Prng

type latency = Fixed of float | Uniform of float * float | Exponential of float

type host = { addr : int; name : string; clock : Clock.t }

(* The remote-transport hook a non-sim backend installs: how to reach a
   named host this process does not own.  The closure owns the wire
   (framing, connections); {!call} owns the timeout and trace-ctx
   discipline, so both backends present identical semantics. *)
type remote = {
  rm_call :
    src:string -> dst:string -> port:string -> string -> ((string, string) result -> unit) -> unit;
}

type t = {
  engine : Engine.t;
  stats : Stats.t;
  prng : Prng.t;
  fault : Fault.t;
  trace : Trace.t;
  mutable default_latency : latency;
  link_latency : (int * int, latency) Hashtbl.t;
  mutable loss : float;
  partitions : (int * int, unit) Hashtbl.t;
  mutable hosts : host list;
  mutable next_addr : int;
  bindings : (string * string, string -> ((string, string) result -> unit) -> unit) Hashtbl.t;
      (* (host name, port) -> serialized-request handler *)
  mutable remote : remote option;
}

let create ?(seed = 42L) ?(latency = Fixed 0.002) engine =
  let stats = Stats.create () in
  {
    engine;
    stats;
    prng = Prng.create seed;
    (* The fault plane draws from its own seeded PRNG so chaos schedules
       are independent of message-level randomness. *)
    fault = Fault.create ~seed:(Int64.logxor seed 0xFA17L) engine stats;
    trace = Trace.create (fun () -> Engine.now engine);
    default_latency = latency;
    link_latency = Hashtbl.create 16;
    loss = 0.0;
    partitions = Hashtbl.create 16;
    hosts = [];
    next_addr = 0;
    bindings = Hashtbl.create 16;
    remote = None;
  }

let engine t = t.engine
let stats t = t.stats
let prng t = t.prng
let fault t = t.fault
let trace t = t.trace

let add_host t ?(clock_rate = 1.0) ?(clock_offset = 0.0) name =
  let host =
    {
      addr = t.next_addr;
      name;
      clock = Clock.create ~rate:clock_rate ~offset:clock_offset t.engine;
    }
  in
  t.next_addr <- t.next_addr + 1;
  t.hosts <- host :: t.hosts;
  host

let host_name h = h.name
let host_clock h = h.clock
let host_addr h = h.addr
let find_host t name = List.find_opt (fun h -> String.equal h.name name) t.hosts
let set_default_latency t l = t.default_latency <- l
let set_link_latency t src dst l = Hashtbl.replace t.link_latency (src.addr, dst.addr) l

let set_loss t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Net.set_loss: probability out of range";
  t.loss <- p

let partition t a b =
  Hashtbl.replace t.partitions (a.addr, b.addr) ();
  Hashtbl.replace t.partitions (b.addr, a.addr) ()

let heal t a b =
  Hashtbl.remove t.partitions (a.addr, b.addr);
  Hashtbl.remove t.partitions (b.addr, a.addr)

let partitioned t a b = Hashtbl.mem t.partitions (a.addr, b.addr)

(* --- host lifecycle (delegated to the fault plane) --- *)

let host_up t h = Fault.up t.fault h.addr
let crash_host t h = Fault.crash t.fault h.addr
let restart_host t h = Fault.restart t.fault h.addr

let on_crash t h f =
  Fault.on_crash t.fault (fun addr -> if addr = h.addr then f ())

let on_restart t h f =
  Fault.on_restart t.fault (fun addr -> if addr = h.addr then f ())

let sample_latency t src dst =
  let model =
    match Hashtbl.find_opt t.link_latency (src.addr, dst.addr) with
    | Some l -> l
    | None -> t.default_latency
  in
  match model with
  | Fixed d -> d
  | Uniform (lo, hi) -> Prng.uniform_in t.prng ~lo ~hi
  | Exponential mean -> 0.001 +. Prng.exponential t.prng ~mean

let account t category size =
  Stats.incr t.stats category;
  Stats.add_bytes t.stats category size

let send t ?(category = "msg") ?(size = 64) ~src ~dst action =
  account t category size;
  (* The ambient trace context at send time rides the message and is
     restored around delivery, so causality survives the latency queue. *)
  let ctx = Trace.current t.trace in
  if not (Fault.up t.fault src.addr) then
    (* A crashed host emits nothing (fail-stop). *)
    Stats.incr t.stats (category ^ ".dead")
  else
    (* Liveness of the destination is re-checked at delivery time, so a
       message in flight when its destination crashes is lost too. *)
    let deliver () =
      if Fault.up t.fault dst.addr then Trace.with_ctx t.trace ctx action
      else Stats.incr t.stats (category ^ ".dead")
    in
    if src.addr = dst.addr then
      Engine.schedule t.engine ~tag:("d:" ^ dst.name) ~delay:0.0 deliver
    else if partitioned t src dst || not (Fault.link_ok t.fault src.addr dst.addr) then
      Stats.incr t.stats (category ^ ".partitioned")
    else if t.loss > 0.0 && Prng.float t.prng 1.0 < t.loss then
      Stats.incr t.stats (category ^ ".lost")
    else
      Engine.schedule t.engine ~tag:("d:" ^ dst.name) ~delay:(sample_latency t src dst) deliver

(* The general request/response shape: the handler runs at [dst] and is
   handed a [reply] closure it may call later, from any engine event —
   which is what asynchronous servers (WAL group commit, nested RPCs)
   need.  [rpc] specialises this to handlers that answer inline. *)
let rpc_async t ?(category = "rpc") ?size ?(timeout = 2.0) ~src ~dst handler k =
  let done_ = ref false in
  let ctx = Trace.current t.trace in
  Engine.schedule t.engine ~tag:("t:" ^ src.name) ~delay:timeout (fun () ->
      if not !done_ then begin
        done_ := true;
        Stats.incr t.stats (category ^ ".timeout");
        (* The timeout continuation belongs to the caller's causal chain
           even though no message carried it. *)
        Trace.with_ctx t.trace ctx (fun () -> k (Error "timeout"))
      end);
  send t ~category ?size ~src ~dst (fun () ->
      handler (fun result ->
          send t ~category:(category ^ ".reply") ?size ~src:dst ~dst:src (fun () ->
              if !done_ then
                (* The caller already gave up: the server-side effects stand
                   but the answer is discarded.  Experiments need to see how
                   often this happens (retried requests must be idempotent). *)
                Stats.incr t.stats (category ^ ".late_reply")
              else begin
                done_ := true;
                k result
              end)))

let rpc t ?category ?size ?timeout ~src ~dst handler k =
  rpc_async t ?category ?size ?timeout ~src ~dst (fun reply -> reply (handler ())) k

let retry_loop t ~category ?(attempts = 5) ?(backoff = 0.25) ?(max_backoff = 8.0) ~src once k =
  if attempts < 1 then invalid_arg "Net.rpc_retry: attempts must be >= 1";
  let ctx = Trace.current t.trace in
  let rec go n =
    Stats.incr t.stats (category ^ ".attempt");
    once (function
      | Error "timeout" when n + 1 < attempts ->
          (* Exponential backoff with deterministic (seeded) jitter to
             decorrelate retry storms. *)
          let base = Float.min max_backoff (backoff *. (2.0 ** float_of_int n)) in
          let jitter = Prng.uniform_in t.prng ~lo:0.0 ~hi:(base *. 0.25) in
          Engine.schedule t.engine ~tag:("t:" ^ src.name) ~delay:(base +. jitter) (fun () ->
              Trace.with_ctx t.trace ctx (fun () -> go (n + 1)))
      | Error "timeout" ->
          Stats.incr t.stats (category ^ ".giveup");
          k (Error "timeout")
      | result -> k result)
  in
  go 0

let rpc_retry t ?(category = "rpc") ?size ?(timeout = 2.0) ?attempts ?backoff ?max_backoff ~src
    ~dst handler k =
  retry_loop t ~category ?attempts ?backoff ?max_backoff ~src
    (fun k1 -> rpc t ~category ?size ~timeout ~src ~dst handler k1)
    k

let rpc_async_retry t ?(category = "rpc") ?size ?(timeout = 2.0) ?attempts ?backoff ?max_backoff
    ~src ~dst handler k =
  retry_loop t ~category ?attempts ?backoff ?max_backoff ~src
    (fun k1 -> rpc_async t ~category ?size ~timeout ~src ~dst handler k1)
    k

let local_call t ?(category = "local") f =
  Stats.incr t.stats category;
  f ()

(* --- named-port messaging (the backend-portable RPC surface) --- *)

let set_remote t rm = t.remote <- rm

let bind t host ~port handler = Hashtbl.replace t.bindings (host.name, port) handler

let unbind t host ~port = Hashtbl.remove t.bindings (host.name, port)

let dispatch t ~dst ~port payload reply =
  match Hashtbl.find_opt t.bindings (dst, port) with
  | Some handler -> handler payload reply
  | None -> reply (Error (Printf.sprintf "no handler bound at %s:%s" dst port))

let call t ?(category = "call") ?size ?(timeout = 2.0) ~src ~dst ~port payload k =
  let size = match size with Some s -> s | None -> String.length payload + 64 in
  match find_host t dst with
  | Some dh ->
      (* Both endpoints live in this process: the request rides the
         ordinary (sim-latency, loss, partition, fault-aware) rpc path. *)
      rpc_async t ~category ~size ~timeout ~src ~dst:dh
        (fun reply -> dispatch t ~dst ~port payload reply)
        k
  | None -> (
      match t.remote with
      | None ->
          Engine.schedule t.engine ~tag:("t:" ^ src.name) ~delay:0.0 (fun () ->
              k (Error ("unknown host: " ^ dst)))
      | Some rm ->
          account t category size;
          let done_ = ref false in
          let ctx = Trace.current t.trace in
          Engine.schedule t.engine ~tag:("t:" ^ src.name) ~delay:timeout (fun () ->
              if not !done_ then begin
                done_ := true;
                Stats.incr t.stats (category ^ ".timeout");
                Trace.with_ctx t.trace ctx (fun () -> k (Error "timeout"))
              end);
          rm.rm_call ~src:src.name ~dst ~port payload (fun result ->
              if !done_ then Stats.incr t.stats (category ^ ".late_reply")
              else begin
                done_ := true;
                Trace.with_ctx t.trace ctx (fun () -> k result)
              end))

let call_retry t ?(category = "call") ?size ?(timeout = 2.0) ?attempts ?backoff ?max_backoff ~src
    ~dst ~port payload k =
  retry_loop t ~category ?attempts ?backoff ?max_backoff ~src
    (fun k1 -> call t ~category ?size ~timeout ~src ~dst ~port payload k1)
    k
