lib/rdl/parser.ml: Ast Lexer List Printf Ty Value
