(** Byte segment custode (§5.2): the lowest MSSA layer, responsible for
    physical storage.  It masks device details and provides a flat segment
    interface to the file custodes above.  Access is restricted to clients
    holding a [Segment] role certificate issued by the custode's service —
    file custodes obtain one at attach time (the levels are mutually
    distrustful, §5.2.1). *)

type t

val create :
  Oasis_sim.Net.t ->
  Oasis_sim.Net.host ->
  Oasis_core.Service.registry ->
  name:string ->
  (t, string) result

val name : t -> string
val service : t -> Oasis_core.Service.t

val attach : t -> client:Oasis_core.Principal.vci -> Oasis_core.Cert.rmc
(** Grant a file custode the [Segment] role covering its own segments. *)

val create_segment : t -> cert:Oasis_core.Cert.rmc -> (int, string) result

val write :
  t -> cert:Oasis_core.Cert.rmc -> seg:int -> off:int -> string -> (unit, string) result

val read : t -> cert:Oasis_core.Cert.rmc -> seg:int -> (string, string) result

val segment_count : t -> int
val bytes_stored : t -> int
