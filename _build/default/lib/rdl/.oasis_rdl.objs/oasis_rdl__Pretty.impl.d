lib/rdl/pretty.ml: Ast Format List String Ty Value
