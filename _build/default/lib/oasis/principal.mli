(** Client identifiers, virtual client identifiers and protection domains
    (§2.8).

    A client identifier is [(host, id, boot_time)] — unique for all time.
    Hosts supporting multiple protection domains provide {e virtual client
    identifiers} (VCIs): a domain names itself with a VCI per task, and every
    credential acquired is bound to a VCI.  A domain may pass a subset of its
    VCIs to a child domain (the cheap, common form of delegation, §2.8.1);
    a credential bound to a VCI the child was not given is unusable by the
    child {e even if stolen}. *)

type client_id = { host : string; local_id : int; boot_time : int }

val pp_client_id : Format.formatter -> client_id -> unit
val client_id_to_string : client_id -> string
val equal_client_id : client_id -> client_id -> bool

type vci
(** A virtual client identifier: meaningless outside its host. *)

val vci_client : vci -> client_id
val vci_tag : vci -> int
val equal_vci : vci -> vci -> bool
val vci_to_string : vci -> string

(** {1 Host-side domain management} *)

module Host : sig
  type t
  (** The per-host operating-system state managing domains and VCIs. *)

  type domain

  val create : ?boot_time:int -> string -> t
  val name : t -> string

  val boot_domain : t -> domain
  (** The initial protection domain (e.g. the login process). *)

  val new_vci : t -> domain -> vci
  (** Mint a fresh VCI usable by (and only by) this domain. *)

  val fork : t -> domain -> give:vci list -> domain
  (** Create a child domain holding exactly the given VCIs; raises
      [Invalid_argument] if the parent does not hold one of them. *)

  val may_use : t -> domain -> vci -> bool
  (** Can the domain name itself with this VCI?  ([false] for stolen
      VCIs — the enforcement the paper asks of the local OS.) *)

  val delegate_vci : t -> domain -> vci -> to_:domain -> unit
  (** Explicitly share a VCI with another domain (both may then use it). *)

  val domain_id : domain -> int
end
